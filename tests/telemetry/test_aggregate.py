"""Read-side guarantees: aggregation equals the live profiler on both
kernels, comm bytes reconcile exactly, and the disabled recorder keeps
the hot loops zero-allocation."""

import math
import tracemalloc

import numpy as np
import pytest

from repro.core import Simulation, shear_wave
from repro.parallel import DistributedSimulation, PhaseProfiler
from repro.parallel.instrumentation import PHASES, PhaseProfile
from repro.telemetry import (
    NULL_TELEMETRY,
    Telemetry,
    filter_events,
    format_event,
    load_run,
    set_telemetry,
)

SHAPE = (24, 6, 6)


def make_dist(kernel=None, telemetry=None):
    dist = DistributedSimulation(
        "D3Q19",
        SHAPE,
        tau=0.8,
        num_ranks=3,
        ghost_depth=2,
        kernel=kernel,
        telemetry=telemetry,
    )
    rho, u = shear_wave(SHAPE)
    dist.initialize(rho, u)
    return dist


class TestAggregationMatchesProfiler:
    @pytest.mark.parametrize("kernel", [None, "planned"])
    def test_phase_profile_equals_live_profiler(self, tmp_path, kernel):
        """load_run().phase_profile() and the live PhaseProfiler fold
        the very same span events — equal arrays, not just close."""
        dist = make_dist(
            kernel=kernel, telemetry=Telemetry.to_dir(tmp_path, process="driver")
        )
        profiler = PhaseProfiler(dist)
        live = profiler.run(6)
        dist.telemetry.flush()

        aggregate = load_run(tmp_path)
        assert aggregate.num_ranks() == 3
        replayed = aggregate.phase_profile()
        assert replayed.steps == live.steps == 6
        for phase in PHASES:
            assert np.array_equal(replayed.seconds[phase], live.seconds[phase])

    @pytest.mark.parametrize("kernel", [None, "planned"])
    def test_comm_bytes_reconcile_exactly(self, tmp_path, kernel):
        """Summed comm.bytes counters equal the fabric ledger's total —
        both are emitted from the same payload.nbytes."""
        dist = make_dist(
            kernel=kernel, telemetry=Telemetry.to_dir(tmp_path, process="driver")
        )
        dist.run(6)
        dist.telemetry.flush()

        aggregate = load_run(tmp_path)
        assert aggregate.comm_bytes == dist.total_comm_bytes()
        assert aggregate.comm_bytes > 0
        assert (
            aggregate.counters["comm.messages"] == dist.mpi.ledger.message_count
        )

    def test_physics_identical_with_telemetry_enabled(self, tmp_path):
        """Instrumented stepping is observation, not perturbation."""
        ref = make_dist()
        ref.run(6)
        instrumented = make_dist(telemetry=Telemetry.to_dir(tmp_path))
        instrumented.run(6)
        assert np.array_equal(instrumented.gather(), ref.gather())


class TestSingleDomainSpans:
    def test_run_emits_per_phase_spans(self, tmp_path):
        recorder = Telemetry.to_dir(tmp_path, process="solo")
        sim = Simulation("D3Q19", (8, 8, 4), tau=0.8, telemetry=recorder)
        rho, u = shear_wave((8, 8, 4))
        sim.initialize(rho, u)
        sim.run(5)
        recorder.flush()

        aggregate = load_run(tmp_path)
        stream = aggregate.spans("phase.stream")
        assert len(stream) == 1
        assert stream[0]["attrs"] == {"rank": 0, "steps": 5}
        seconds = aggregate.phase_seconds()
        # Spans are derived from the same StepTimings clocks.
        assert seconds["stream"] == sim.timings.stream_seconds
        assert seconds["collide"] == sim.timings.collide_seconds
        assert seconds["boundary"] == sim.timings.boundary_seconds

    def test_each_run_call_gets_its_own_spans(self):
        recorder = Telemetry.in_memory()
        sim = Simulation("D3Q19", (8, 8, 4), tau=0.8, telemetry=recorder)
        rho, u = shear_wave((8, 8, 4))
        sim.initialize(rho, u)
        sim.run(2)
        sim.run(3)
        steps = [
            e["attrs"]["steps"]
            for e in recorder.events()
            if e.get("name") == "phase.stream"
        ]
        assert steps == [2, 3]


class TestKernelAutoEvents:
    def test_auto_selection_emits_verdict(self):
        from repro.core.plan import auto_select_kernel
        from repro.lattice import get_lattice

        recorder = Telemetry.in_memory()
        set_telemetry(recorder)
        try:
            winner = auto_select_kernel(
                get_lattice("D3Q19"), (8, 8, 4), 0.8, cache=False
            )
        finally:
            set_telemetry(NULL_TELEMETRY)
        verdicts = [
            e for e in recorder.events() if e.get("name") == "kernel.auto"
        ]
        assert len(verdicts) == 1
        attrs = verdicts[0]["attrs"]
        assert attrs["winner"] == winner.name
        assert attrs["provenance"] == "measured"
        assert attrs["lattice"] == "D3Q19"
        assert attrs["shape"] == [8, 8, 4]
        # measured MFLUP/s per candidate, winner included
        assert winner.name in attrs["mflups"]
        assert all(rate > 0 for rate in attrs["mflups"].values())


class TestEventFiltering:
    def test_filter_and_format(self):
        recorder = Telemetry.in_memory(process="w1")
        recorder.count("cache.hit")
        recorder.record_span("variant", 0.5, fingerprint="abc")
        events = recorder.events()
        assert [e["name"] for e in filter_events(events, name="cache")] == [
            "cache.hit"
        ]
        assert filter_events(events, etype="span")[0]["name"] == "variant"
        assert filter_events(events, process="nope") == []
        line = format_event(filter_events(events, etype="span")[0])
        assert "[w1]" in line and "variant" in line and "0.500000s" in line


class TestDisabledZeroAllocation:
    """The PR 4/5 zero-allocation guarantees survive instrumentation:
    with the default (null) recorder the hot loops never call into
    telemetry, only guard on one attribute."""

    def test_single_domain_planned_run_allocates_nothing(self):
        sim = Simulation("D3Q19", (16, 8, 8), tau=0.8, kernel="planned")
        rho, u = shear_wave((16, 8, 8))
        sim.initialize(rho, u)
        assert not sim.telemetry.enabled
        sim.run(3)  # warm every lazy cache
        tracemalloc.start()
        sim.run(5)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < sim.f.nbytes // 50, f"disabled-path run allocated {peak} B"

    def test_distributed_planned_run_stays_zero_alloc(self):
        # Same geometry/budget as the seed zero-alloc test in
        # tests/parallel/test_planned_slab.py: the fixed per-step
        # bookkeeping (Request objects) must stay under 1% of slab bytes.
        dist = DistributedSimulation(
            "D3Q19", (32, 16, 16), tau=0.8, num_ranks=4, ghost_depth=2,
            kernel="planned",
        )
        rho, u = shear_wave((32, 16, 16))
        dist.initialize(rho, u)
        assert not dist.telemetry.enabled
        dist.run(4)
        slab_bytes = sum(slab.data.nbytes for slab in dist.slabs)
        tracemalloc.start()
        dist.run(6)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < slab_bytes // 100, f"disabled-path step allocated {peak} B"


class TestRollupEdgeCases:
    def test_empty_aggregate(self, tmp_path):
        aggregate = load_run(tmp_path)
        assert aggregate.events == []
        assert aggregate.counters == {}
        assert math.isnan(aggregate.cache_hit_rate())
        assert math.isnan(aggregate.eta_seconds(3))
        assert aggregate.eta_seconds(0) == 0.0
        assert aggregate.summary_lines() == []

    def test_empty_phase_profile_comm_fraction_is_nan(self):
        assert math.isnan(PhaseProfile(2).comm_fraction())
