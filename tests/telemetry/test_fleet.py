"""Fleet telemetry: concurrent multi-worker sweeps merge without loss,
worker reports carry telemetry-sourced fields, heartbeats are emitted,
and sweep-status renders the rollup."""

import math
import time

import pytest

from repro.scenarios import (
    Sweep,
    SweepExecutor,
    SweepScheduler,
    sweep_status,
)
from repro.scenarios.scheduler import LeaseBoard
from repro.scenarios.workers import lease_heartbeat, run_worker
from repro.telemetry import Telemetry, load_run


def make_sweep(taus=(0.6, 0.7, 0.8)):
    return Sweep("taylor-green", {"tau": list(taus)}, steps=10)


class TestMultiWorkerMerge:
    def test_two_worker_sweep_merges_without_loss(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        result = SweepScheduler(
            make_sweep(), tmp_path, workers=2, telemetry_dir=telemetry_dir
        ).run()
        assert result.passed

        aggregate = load_run(tmp_path)
        # one exclusively-owned file per launched worker, no torn lines
        assert len(aggregate.files) == 2
        assert aggregate.dropped == 0
        # every variant executed exactly once, fleet-wide
        counters = aggregate.counters
        assert counters["variant.completed"] == 3
        spans = aggregate.variant_spans()
        assert len(spans) == 3
        assert {s["attrs"]["fingerprint"] for s in spans} == set(
            result.fingerprints
        )
        # span attrs and counters describe the same work
        updates = sum(
            s["attrs"]["steps"] * s["attrs"]["cells"] for s in spans
        )
        assert counters["variant.updates"] == updates
        stats = aggregate.worker_stats()
        assert sum(w.variants for w in stats.values()) == 3
        assert set(stats) <= {"w1", "w2"}

    def test_executor_pool_children_write_own_files(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        result = SweepExecutor(
            make_sweep(),
            jobs=2,
            cache_dir=tmp_path,
            telemetry_dir=telemetry_dir,
        ).run(analyze=False)
        assert result.runs_executed == 3
        aggregate = load_run(tmp_path)
        assert aggregate.dropped == 0
        assert aggregate.counters["variant.completed"] == 3
        # pool children forked from the parent must not share its file
        assert len(aggregate.files) >= 2

    def test_warm_executor_counts_cached_variants(self, tmp_path):
        telemetry_dir = tmp_path / "telemetry"
        SweepExecutor(make_sweep(), cache_dir=tmp_path).run(analyze=False)
        warm = SweepExecutor(
            make_sweep(),
            cache_dir=tmp_path,
            telemetry_dir=telemetry_dir,
        ).run(analyze=False)
        assert warm.runs_executed == 0
        aggregate = load_run(tmp_path)
        assert aggregate.counters["variant.cached"] == 3
        assert aggregate.counters["cache.hit"] == 3
        assert aggregate.cache_hit_rate() == 1.0


class TestWorkerReport:
    def test_report_fields_sourced_from_telemetry(self, tmp_path):
        SweepScheduler(make_sweep(), tmp_path, workers=0).publish()
        telemetry_dir = tmp_path / "telemetry"

        first = run_worker(
            tmp_path, worker_id="w1", telemetry_dir=telemetry_dir
        )
        assert len(first.completed) == 3
        assert first.cache_hits == 0
        assert first.mflups > 0
        assert "MFLUP/s" in first.summary()

        second = run_worker(
            tmp_path, worker_id="w2", telemetry_dir=telemetry_dir
        )
        assert second.completed == []
        assert second.cache_hits == 3
        assert math.isnan(second.mflups)
        assert "3 cache hit(s)" in second.summary()

    def test_report_defaults_without_recorder(self, tmp_path):
        SweepScheduler(make_sweep((0.7,)), tmp_path, workers=0).publish()
        report = run_worker(tmp_path, worker_id="w1")
        assert report.cache_hits == 0
        assert math.isnan(report.mflups)
        assert "cache hit" not in report.summary()
        assert "MFLUP/s" not in report.summary()


class TestHeartbeat:
    def test_heartbeat_emits_events(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="w1", ttl=0.2)
        assert board.acquire("fp123")
        recorder = Telemetry.in_memory(process="w1")
        try:
            with lease_heartbeat(board, "fp123", recorder):
                time.sleep(0.18)  # ttl/4 = 50 ms -> a few beats
        finally:
            board.release("fp123")
        beats = [
            e for e in recorder.events() if e["name"] == "worker.heartbeat"
        ]
        assert beats
        assert beats[0]["attrs"] == {"worker": "w1", "fingerprint": "fp123"}

    def test_heartbeat_defaults_to_silent(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="w1", ttl=0.2)
        assert board.acquire("fp123")
        try:
            with lease_heartbeat(board, "fp123"):
                time.sleep(0.12)
        finally:
            board.release("fp123")  # no recorder, no error


class TestStatusRollup:
    def test_status_includes_telemetry_lines(self, tmp_path):
        SweepScheduler(
            make_sweep(), tmp_path, workers=2,
            telemetry_dir=tmp_path / "telemetry",
        ).run()
        status = sweep_status(tmp_path)
        assert status.telemetry is not None
        assert status.telemetry.events > 0
        assert status.to_payload()["telemetry"]["events"] > 0
        summary = status.summary()
        assert "telemetry:" in summary
        assert "cache hit rate" in summary
        assert "MFLUP/s" in summary

    def test_status_without_telemetry_stays_bare(self, tmp_path):
        SweepExecutor(make_sweep((0.7,)), cache_dir=tmp_path).run(
            analyze=False
        )
        status = sweep_status(tmp_path)
        assert status.telemetry is None
        assert status.to_payload()["telemetry"] is None
        assert "telemetry:" not in status.summary()


@pytest.mark.parametrize("workers", [1, 2])
def test_telemetry_never_changes_the_table(tmp_path, workers):
    """Observation is not perturbation at the sweep level either: the
    data columns are byte-identical with and without telemetry."""
    plain = SweepExecutor(make_sweep(), cache_dir=tmp_path / "a").run(
        analyze=False
    )
    instrumented = SweepScheduler(
        make_sweep(),
        tmp_path / "b",
        workers=workers,
        analyze=False,
        telemetry_dir=tmp_path / "b" / "telemetry",
    ).run()
    assert instrumented.to_table() == plain.to_table()
    assert instrumented.to_csv() == plain.to_csv()
