"""Telemetry recorder units: spans, counters, JSONL schema, the
disabled recorder's no-op surface, and ambient/process registries."""

import threading

import numpy as np
import pytest

from repro.telemetry import (
    EVENT_VERSION,
    NULL_TELEMETRY,
    TELEMETRY_DIR_ENV,
    NullTelemetry,
    Telemetry,
    get_telemetry,
    process_recorder,
    read_events_file,
    set_telemetry,
)


@pytest.fixture
def restore_ambient():
    """Run the test with a clean ambient recorder, restoring after."""
    previous = set_telemetry(NULL_TELEMETRY)
    yield
    set_telemetry(previous)


class TestRecorder:
    def test_meta_event_leads(self):
        t = Telemetry.in_memory(run="r1", process="p1")
        first = t.events()[0]
        assert first["type"] == "meta"
        assert first["attrs"]["run"] == "r1"
        assert first["process"] == "p1"

    def test_span_context_manager(self):
        t = Telemetry.in_memory()
        with t.span("phase.test", rank=1) as span:
            pass
        event = t.events()[-1]
        assert event["type"] == "span"
        assert event["name"] == "phase.test"
        assert event["seconds"] >= 0
        assert event["attrs"]["rank"] == 1
        assert span.seconds == event["seconds"]

    def test_span_late_attrs_recorded(self):
        """Attrs set inside the with body (known only after the work)
        must land on the emitted event."""
        t = Telemetry.in_memory()
        with t.span("variant") as span:
            span.set(steps=7, cells=64)
        attrs = t.events()[-1]["attrs"]
        assert attrs == {"steps": 7, "cells": 64}

    def test_record_span_pre_measured(self):
        t = Telemetry.in_memory()
        t.record_span("phase.stream", 0.25, rank=2)
        event = t.events()[-1]
        assert event["seconds"] == 0.25
        assert event["attrs"] == {"rank": 2}

    def test_counters_accumulate(self):
        t = Telemetry.in_memory()
        t.count("cache.hit")
        t.count("cache.hit", 2)
        assert t.counters["cache.hit"] == 3
        values = [e["value"] for e in t.events() if e["type"] == "count"]
        assert values == [1, 2]

    def test_negative_increment_rejected(self):
        t = Telemetry.in_memory()
        with pytest.raises(ValueError, match="cache.hit"):
            t.count("cache.hit", -1)

    def test_requires_a_sink(self):
        with pytest.raises(ValueError, match="sink"):
            Telemetry()

    def test_thread_safe_counting(self):
        t = Telemetry.in_memory()

        def work():
            for _ in range(200):
                t.count("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert t.counters["n"] == 800
        assert sum(1 for e in t.events() if e["type"] == "count") == 800


class TestJsonlRoundTrip:
    def test_schema_round_trip(self, tmp_path):
        with Telemetry.to_dir(tmp_path, run="sweep-1", process="w1") as t:
            path = t.path
            with t.span("variant", fingerprint="abc"):
                pass
            t.count("comm.bytes", np.int64(4096))
            t.event("kernel.auto", winner="planned", shape=[8, 8, 4])
        events, dropped = read_events_file(path)
        assert dropped == 0
        assert [e["type"] for e in events] == ["meta", "span", "count", "event"]
        assert all(e["v"] == EVENT_VERSION for e in events)
        assert all(e["process"] == "w1" for e in events)
        assert events[1]["attrs"]["fingerprint"] == "abc"
        # numpy scalars coerced to plain JSON numbers
        assert events[2]["value"] == 4096
        assert isinstance(events[2]["value"], int)
        assert events[3]["attrs"] == {"winner": "planned", "shape": [8, 8, 4]}

    def test_colliding_labels_get_distinct_files(self, tmp_path):
        a = Telemetry.to_dir(tmp_path, process="w1")
        b = Telemetry.to_dir(tmp_path, process="w1")
        assert a.path != b.path
        a.close()
        b.close()
        assert len(list(tmp_path.glob("*.jsonl"))) == 2

    def test_lines_durable_without_flush(self, tmp_path):
        """Line buffering: a killed process loses at most a torn line."""
        t = Telemetry.to_dir(tmp_path)
        t.count("x")
        events, dropped = read_events_file(t.path)
        t.close()
        assert dropped == 0
        assert [e["name"] for e in events] == ["meta", "x"]

    def test_torn_line_dropped_not_fatal(self, tmp_path):
        t = Telemetry.to_dir(tmp_path)
        t.count("ok")
        t.close()
        with open(t.path, "a") as handle:
            handle.write('{"v": 1, "type": "count", "na')
        events, dropped = read_events_file(t.path)
        assert dropped == 1
        assert [e["name"] for e in events] == ["meta", "ok"]


class TestNullRecorder:
    def test_noop_surface(self):
        n = NullTelemetry()
        assert n.enabled is False
        with n.span("x", a=1) as span:
            span.set(b=2)
        assert span.seconds is None
        n.count("c")
        n.record_span("s", 0.1)
        n.event("e")
        assert n.events() == []
        assert n.counters == {}

    def test_null_span_is_shared(self):
        """The disabled span path allocates no per-call object."""
        n = NullTelemetry()
        assert n.span("a") is n.span("b") is NULL_TELEMETRY.span("c")


class TestAmbientRecorder:
    def test_default_is_null(self, restore_ambient, monkeypatch):
        monkeypatch.delenv(TELEMETRY_DIR_ENV, raising=False)
        assert get_telemetry() is NULL_TELEMETRY

    def test_set_and_clear(self, restore_ambient):
        t = Telemetry.in_memory()
        set_telemetry(t)
        assert get_telemetry() is t
        set_telemetry(NULL_TELEMETRY)
        assert get_telemetry() is NULL_TELEMETRY

    def test_env_var_enables_file_recorder(
        self, restore_ambient, tmp_path, monkeypatch
    ):
        monkeypatch.setenv(TELEMETRY_DIR_ENV, str(tmp_path))
        t = get_telemetry()
        try:
            assert t.enabled
            assert t.path is not None and t.path.parent == tmp_path
            assert get_telemetry() is t  # cached, one file per process
        finally:
            t.close()
            set_telemetry(NULL_TELEMETRY)


class TestProcessRecorder:
    def test_shared_per_directory(self, tmp_path):
        a = process_recorder(tmp_path)
        try:
            assert process_recorder(tmp_path) is a
        finally:
            a.close()
        b = process_recorder(tmp_path)  # re-created after close
        b.close()
        assert b is not a
