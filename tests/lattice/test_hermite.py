"""Tests for Hermite/Gaussian moment machinery."""

from fractions import Fraction

import numpy as np
import pytest

from repro.lattice import (
    double_factorial,
    gaussian_moment,
    gaussian_moment_1d,
    get_lattice,
    hermite_tensor,
    hermite_value,
    multi_indices,
)
from repro.lattice.hermite import hermite_orthogonality_defect


class TestDoubleFactorial:
    def test_base_cases(self):
        assert double_factorial(-1) == 1
        assert double_factorial(0) == 1
        assert double_factorial(1) == 1

    def test_even(self):
        assert double_factorial(6) == 48

    def test_odd(self):
        assert double_factorial(7) == 105

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            double_factorial(-2)


class TestGaussianMoments1D:
    def test_odd_vanish(self):
        for order in (1, 3, 5, 7):
            assert gaussian_moment_1d(order, Fraction(1, 3)) == 0

    def test_second_is_variance(self):
        assert gaussian_moment_1d(2, Fraction(2, 3)) == Fraction(2, 3)

    def test_fourth(self):
        # <x^4> = 3 sigma^4
        assert gaussian_moment_1d(4, Fraction(1, 3)) == 3 * Fraction(1, 9)

    def test_sixth(self):
        # <x^6> = 15 sigma^6
        assert gaussian_moment_1d(6, Fraction(1, 3)) == 15 * Fraction(1, 27)

    def test_float_input(self):
        assert gaussian_moment_1d(2, 0.5) == pytest.approx(0.5)

    def test_negative_order_raises(self):
        with pytest.raises(ValueError):
            gaussian_moment_1d(-1, 0.5)


class TestGaussianMomentsND:
    def test_factorizes(self):
        cs2 = Fraction(1, 3)
        assert gaussian_moment((2, 2, 0), cs2) == cs2 * cs2

    def test_any_odd_component_vanishes(self):
        assert gaussian_moment((2, 1, 0), Fraction(1, 3)) == 0

    def test_isotropic_sixth(self):
        cs2 = Fraction(2, 3)
        assert gaussian_moment((2, 2, 2), cs2) == cs2**3
        assert gaussian_moment((4, 2, 0), cs2) == 3 * cs2**3
        assert gaussian_moment((6, 0, 0), cs2) == 15 * cs2**3


class TestMultiIndices:
    def test_count_matches_stars_and_bars(self):
        # number of multi-indices of degree n in d vars = C(n+d-1, d-1)
        import math

        for d, n in ((3, 2), (3, 4), (2, 5)):
            got = len(list(multi_indices(d, n)))
            assert got == math.comb(n + d - 1, d - 1)

    def test_degrees_are_exact(self):
        for alpha in multi_indices(3, 4):
            assert sum(alpha) == 4

    def test_one_dimension(self):
        assert list(multi_indices(1, 3)) == [(3,)]


class TestHermiteTensors:
    def setup_method(self):
        self.xi = np.array([[1.0, 0.0, 0.0], [1.0, 1.0, -1.0], [0.0, 0.0, 0.0]])
        self.cs2 = 1.0 / 3.0

    def test_order0(self):
        assert np.allclose(hermite_tensor(0, self.xi, self.cs2), 1.0)

    def test_order1_is_identity(self):
        assert np.allclose(hermite_tensor(1, self.xi, self.cs2), self.xi)

    def test_order2_diagonal(self):
        h2 = hermite_tensor(2, self.xi, self.cs2)
        assert h2[0, 0, 0] == pytest.approx(1.0 - self.cs2)
        assert h2[0, 1, 1] == pytest.approx(-self.cs2)
        assert h2[0, 0, 1] == pytest.approx(0.0)

    def test_order2_symmetry(self):
        h2 = hermite_tensor(2, self.xi, self.cs2)
        assert np.allclose(h2, np.swapaxes(h2, 1, 2))

    def test_order3_value(self):
        h3 = hermite_tensor(3, self.xi, self.cs2)
        # H3_xxx(xi=(1,0,0)) = 1 - 3*cs2
        assert h3[0, 0, 0, 0] == pytest.approx(1.0 - 3 * self.cs2)

    def test_order3_full_symmetry(self):
        h3 = hermite_tensor(3, self.xi, self.cs2)
        assert np.allclose(h3, np.transpose(h3, (0, 2, 1, 3)))
        assert np.allclose(h3, np.transpose(h3, (0, 3, 2, 1)))

    def test_order4_rest_velocity(self):
        h4 = hermite_tensor(4, self.xi, self.cs2)
        # H4_xxyy(0) = cs2^2 (one delta-delta term survives)
        assert h4[2, 0, 0, 1, 1] == pytest.approx(self.cs2**2)
        # H4_xxxx(0) = 3 cs2^2
        assert h4[2, 0, 0, 0, 0] == pytest.approx(3 * self.cs2**2)

    def test_single_velocity_input(self):
        h1 = hermite_tensor(1, np.array([1.0, 2.0, 3.0]), self.cs2)
        assert h1.shape == (1, 3)

    def test_order5_not_implemented(self):
        with pytest.raises(NotImplementedError):
            hermite_tensor(5, self.xi, self.cs2)

    def test_hermite_value_component(self):
        val = hermite_value((0, 0), self.xi, self.cs2)
        h2 = hermite_tensor(2, self.xi, self.cs2)
        assert np.allclose(val, h2[:, 0, 0])


class TestOrthogonality:
    """Discrete Hermite orthogonality on the quadrature lattices."""

    @pytest.mark.parametrize("name,max_pair", [("D3Q19", 2), ("D3Q39", 3)])
    def test_orthogonality_holds_up_to_supported_order(self, name, max_pair):
        lat = get_lattice(name)
        for a in range(max_pair + 1):
            for b in range(max_pair + 1):
                if a + b > 2 * lat.equilibrium_order:
                    continue
                defect = hermite_orthogonality_defect(
                    lat.weights, lat.velocities.astype(float), lat.cs2_float, a, b
                )
                assert defect < 1e-12, (a, b, defect)

    def test_d3q19_fails_third_order_orthogonality(self):
        lat = get_lattice("D3Q19")
        defect = hermite_orthogonality_defect(
            lat.weights, lat.velocities.astype(float), lat.cs2_float, 3, 3
        )
        assert defect > 1e-3

    def test_d3q39_passes_third_order_orthogonality(self):
        lat = get_lattice("D3Q39")
        defect = hermite_orthogonality_defect(
            lat.weights, lat.velocities.astype(float), lat.cs2_float, 3, 3
        )
        assert defect < 1e-12
