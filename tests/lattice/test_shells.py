"""Tests for shell generation by signed permutation."""

import numpy as np
import pytest

from repro.lattice import expand_shells, shell_size, signed_permutations


class TestSignedPermutations:
    def test_rest(self):
        assert signed_permutations((0, 0, 0)) == [(0, 0, 0)]

    def test_face_neighbors(self):
        assert shell_size((1, 0, 0)) == 6

    def test_edge_neighbors(self):
        assert shell_size((1, 1, 0)) == 12

    def test_corner_neighbors(self):
        assert shell_size((1, 1, 1)) == 8

    def test_220_shell(self):
        assert shell_size((2, 2, 0)) == 12

    def test_300_shell(self):
        assert shell_size((3, 0, 0)) == 6

    def test_mixed_magnitudes(self):
        # (2,1,0): 3! orderings x 2^2 signs = 24
        assert shell_size((2, 1, 0)) == 24

    def test_sorted_and_unique(self):
        vecs = signed_permutations((1, 1, 0))
        assert vecs == sorted(set(vecs))

    def test_closed_under_negation(self):
        vecs = set(signed_permutations((2, 1, 0)))
        for v in vecs:
            assert tuple(-c for c in v) in vecs

    def test_2d_input(self):
        assert shell_size((1, 0)) == 4


class TestExpandShells:
    def test_d3q19_structure(self):
        velocities, shell_index = expand_shells([(0, 0, 0), (1, 0, 0), (1, 1, 0)])
        assert velocities.shape == (19, 3)
        assert np.bincount(shell_index).tolist() == [1, 6, 12]

    def test_duplicate_shells_raise(self):
        with pytest.raises(ValueError, match="overlap"):
            expand_shells([(1, 0, 0), (0, 1, 0)])

    def test_dtype_is_integer(self):
        velocities, _ = expand_shells([(1, 0, 0)])
        assert velocities.dtype == np.int64

    def test_shell_order_preserved(self):
        velocities, shell_index = expand_shells([(1, 1, 1), (1, 0, 0)])
        # first 8 vectors belong to shell 0 (the corner shell)
        assert (shell_index[:8] == 0).all()
        assert (np.abs(velocities[:8]).sum(axis=1) == 3).all()
