"""Property-based tests on the lattice substrate."""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.lattice import (
    gaussian_moment,
    get_lattice,
    multi_indices,
    shell_size,
    signed_permutations,
)

LATTICE_NAMES = ("D3Q15", "D3Q19", "D3Q27", "D3Q39")

small_ints = st.integers(min_value=0, max_value=3)


@given(base=st.tuples(small_ints, small_ints, small_ints))
def test_shell_closed_under_negation(base):
    vecs = set(signed_permutations(base))
    assert all(tuple(-c for c in v) in vecs for v in vecs)


@given(base=st.tuples(small_ints, small_ints, small_ints))
def test_shell_size_formula(base):
    """|orbit| = 3!/(multiplicity!) permutations x 2^(nonzeros) signs."""
    import math
    from collections import Counter

    counts = Counter(base)
    perms = math.factorial(3)
    for c in counts.values():
        perms //= math.factorial(c)
    nonzero = sum(1 for c in base if c != 0)
    assert shell_size(base) == perms * 2**nonzero


@given(
    name=st.sampled_from(LATTICE_NAMES),
    alpha=st.tuples(small_ints, small_ints, small_ints),
)
def test_odd_moments_vanish(name, alpha):
    """Any moment with an odd component vanishes by lattice parity."""
    lat = get_lattice(name)
    if all(a % 2 == 0 for a in alpha):
        return
    assert abs(lat.moment(alpha)) < 1e-12


@given(name=st.sampled_from(LATTICE_NAMES), order=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_isotropy_claim_matches_moment_defects(name, order):
    """isotropy_order() is consistent with per-degree moment defects."""
    lat = get_lattice(name)
    iso = lat.isotropy_order()
    if order <= iso:
        assert lat.moment_defect(order) < 1e-12
    else:
        assert lat.moment_defect(order) > 1e-12


@given(
    alpha=st.tuples(small_ints, small_ints, small_ints),
    num=st.integers(1, 5),
    den=st.integers(1, 5),
)
def test_gaussian_moment_scaling(alpha, num, den):
    """<xi^alpha> scales as cs2^(|alpha|/2) for even alpha."""
    cs2 = Fraction(num, den)
    m1 = gaussian_moment(alpha, cs2)
    m2 = gaussian_moment(alpha, 4 * cs2)
    degree = sum(alpha)
    if any(a % 2 for a in alpha):
        assert m1 == 0 and m2 == 0
    else:
        assert m2 == m1 * 2**degree


@given(dim=st.integers(1, 4), degree=st.integers(0, 5))
def test_multi_indices_unique_and_complete(dim, degree):
    idx = list(multi_indices(dim, degree))
    assert len(idx) == len(set(idx))
    assert all(sum(a) == degree and len(a) == dim for a in idx)
