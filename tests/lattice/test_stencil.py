"""Tests for the VelocitySet abstraction and the four lattices."""

from fractions import Fraction

import numpy as np
import pytest

from repro.lattice import available_lattices, get_lattice, register_lattice
from repro.lattice.stencil import build_velocity_set


class TestBasicStructure:
    def test_q_counts(self):
        for name, q in (("D3Q15", 15), ("D3Q19", 19), ("D3Q27", 27), ("D3Q39", 39)):
            assert get_lattice(name).q == q

    def test_weights_sum_to_one(self, lattice):
        assert lattice.weights.sum() == pytest.approx(1.0, abs=1e-14)

    def test_weights_positive(self, lattice):
        assert (lattice.weights > 0).all()

    def test_rest_velocity_exists(self, lattice):
        assert (lattice.velocities[lattice.rest_index] == 0).all()

    def test_closed_under_negation(self, lattice):
        opp = lattice.opposite
        assert np.array_equal(
            lattice.velocities[opp], -lattice.velocities
        )

    def test_opposite_is_involution(self, lattice):
        opp = lattice.opposite
        assert np.array_equal(opp[opp], np.arange(lattice.q))

    def test_velocities_readonly(self, lattice):
        with pytest.raises(ValueError):
            lattice.velocities[0, 0] = 99

    def test_validate_passes(self, lattice):
        lattice.validate()


class TestPaperConstants:
    """The specific numbers the paper's performance model depends on."""

    def test_bytes_per_cell_d3q19(self, q19):
        # "B = (19+19+19)*8 = 456 bytes per lattice point"
        assert q19.bytes_per_cell == 456

    def test_bytes_per_cell_d3q39(self, q39):
        # "for the D3Q39 model, there are 936 bytes per lattice point"
        assert q39.bytes_per_cell == 936

    def test_sound_speeds(self, q19, q39):
        assert q19.cs2 == Fraction(1, 3)
        assert q39.cs2 == Fraction(2, 3)

    def test_max_displacement_d3q19(self, q19):
        assert q19.max_displacement == 1

    def test_max_displacement_d3q39_is_three(self, q39):
        # Table I includes (3,0,0): populations hop up to 3 planes.
        # (The paper's prose says 2; see DESIGN.md.)
        assert q39.max_displacement == 3

    def test_d3q39_shell_weights(self, q39):
        by_base = {s.base: s.weight for s in q39.shells}
        assert by_base[(0, 0, 0)] == Fraction(1, 12)
        assert by_base[(1, 0, 0)] == Fraction(1, 12)
        assert by_base[(1, 1, 1)] == Fraction(1, 27)
        assert by_base[(2, 0, 0)] == Fraction(2, 135)
        # OCR-corrected from the paper's printed "1/142":
        assert by_base[(2, 2, 0)] == Fraction(1, 432)
        assert by_base[(3, 0, 0)] == Fraction(1, 1620)

    def test_d3q39_weights_sum_exactly(self, q39):
        total = sum(s.weight * s.size for s in q39.shells)
        assert total == Fraction(1)

    def test_d3q19_neighbor_orders(self, q19):
        orders = [s.neighbor_order for s in q19.shells]
        assert orders == [0, 1, 2]

    def test_d3q39_spans_five_neighbor_orders(self, q39):
        assert [s.neighbor_order for s in q39.shells] == [0, 1, 2, 3, 4, 5]


class TestIsotropy:
    """The paper's central quadrature claims."""

    def test_second_moment_is_cs2(self, lattice):
        assert lattice.moment((2, 0, 0)) == pytest.approx(
            lattice.cs2_float, abs=1e-14
        )

    def test_all_fourth_order_isotropic(self, lattice):
        assert lattice.isotropy_order() >= 4

    def test_d3q19_not_sixth_order(self, q19):
        assert q19.isotropy_order() < 6

    def test_d3q39_exactly_sixth_order(self, q39):
        assert q39.isotropy_order() >= 6

    def test_d3q39_not_eighth_order(self, q39):
        assert q39.isotropy_order() < 8

    def test_d3q19_sixth_moment_defects_are_physical(self, q19):
        # two physical failures at sixth order: D3Q19 has no (1,1,1)
        # velocities, so <cx^2 cy^2 cz^2> = 0 vs cs2^3 = 1/27, and
        # <cx^6> = 1/3 vs 15 cs2^3 = 5/9 (defect 2/9, the worst one).
        assert q19.moment((2, 2, 2)) == pytest.approx(0.0, abs=1e-14)
        assert q19.moment((6, 0, 0)) == pytest.approx(1.0 / 3.0, abs=1e-14)
        assert q19.moment_defect(6) == pytest.approx(2.0 / 9.0, abs=1e-12)

    def test_exact_rational_moments_agree_with_float(self, q39):
        for alpha in ((2, 0, 0), (2, 2, 0), (4, 0, 0), (2, 2, 2)):
            assert float(q39.moment_exact(alpha)) == pytest.approx(
                q39.moment(alpha), abs=1e-12
            )

    def test_moment_defect_exact_mode(self, q39):
        assert q39.moment_defect(6, exact=True) == 0


class TestTableRows:
    def test_row_rendering(self, q19):
        rows = q19.table_rows()
        assert rows[0] == ("(0, 0, 0)", "1/3", 0, "0")
        assert rows[2][3] == "sqrt(2)"

    def test_d3q39_distances(self, q39):
        dist = [row[3] for row in q39.table_rows()]
        assert dist == ["0", "1", "sqrt(3)", "2", "sqrt(8)", "3"]


class TestRegistry:
    def test_available(self):
        assert set(available_lattices()) >= {"D3Q15", "D3Q19", "D3Q27", "D3Q39"}

    def test_case_insensitive(self):
        assert get_lattice("d3q19") is get_lattice("D3Q19")

    def test_cached(self):
        assert get_lattice("D3Q39") is get_lattice("D3Q39")

    def test_unknown_raises_with_hint(self):
        with pytest.raises(KeyError, match="available"):
            get_lattice("D3Q999")

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError, match="already registered"):
            register_lattice("D3Q19", lambda: None)


class TestBuildValidation:
    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError, match="sum"):
            build_velocity_set(
                "BAD",
                Fraction(1, 3),
                [((0, 0, 0), Fraction(1, 2)), ((1, 0, 0), Fraction(1, 2))],
                equilibrium_order=2,
            )

    def test_wrong_cs2_rejected(self):
        # D3Q19 weights with a wrong declared sound speed
        with pytest.raises(ValueError, match="second moment"):
            build_velocity_set(
                "BAD",
                Fraction(1, 2),
                [
                    ((0, 0, 0), Fraction(1, 3)),
                    ((1, 0, 0), Fraction(1, 18)),
                    ((1, 1, 0), Fraction(1, 36)),
                ],
                equilibrium_order=2,
            )
