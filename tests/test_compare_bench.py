"""The CI benchmark regression gate (benchmarks/compare_bench.py)."""

import importlib.util
from pathlib import Path

COMPARATOR = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"


def load_comparator():
    spec = importlib.util.spec_from_file_location("compare_bench", COMPARATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


RECORD = {
    "kernels": {
        "test_kernel_throughput[roll-float64-D3Q19]": {"mflups": 3.0},
        "test_kernel_throughput[roll-float32-D3Q19]": {"mflups": 8.0},
        "test_kernel_throughput[planned-float64-D3Q19]": {"mflups": 6.0},
        "test_distributed_throughput[planned-float64-D3Q19]": {"mflups": 5.0},
        "test_distributed_throughput[planned-float64-D3Q39]": {"mflups": 1.5},
        "test_distributed_throughput[planned-float32-D3Q19]": {"mflups": 9.0},
        "test_distributed_overhead": {"mean_s": 0.004},
    }
}


class TestSelection:
    def test_single_token_excludes_float32(self):
        module = load_comparator()
        assert module.kernel_mflups(RECORD, "roll") == {"D3Q19": 3.0}

    def test_plus_tokens_must_all_match(self):
        """planned+distributed separates the slab rows from the
        single-domain planned rows (both contain 'planned')."""
        module = load_comparator()
        assert module.kernel_mflups(RECORD, "planned+distributed") == {
            "D3Q19": 5.0,
            "D3Q39": 1.5,
        }

    def test_plain_planned_would_collide_by_design(self):
        """Documenting why the gate uses the + form: a bare 'planned'
        matches both suites (last match wins per lattice)."""
        module = load_comparator()
        found = module.kernel_mflups(RECORD, "planned")
        assert set(found) == {"D3Q19", "D3Q39"}


class TestCompare:
    def test_within_tolerance_passes(self):
        module = load_comparator()
        current = {
            "kernels": {
                "test_distributed_throughput[planned-float64-D3Q19]": {
                    "mflups": 4.0
                },
                "test_distributed_throughput[planned-float64-D3Q39]": {
                    "mflups": 1.2
                },
            }
        }
        ok, lines = module.compare(RECORD, current, "planned+distributed", 0.30)
        assert ok
        assert len(lines) == 2

    def test_regression_beyond_tolerance_fails(self):
        module = load_comparator()
        current = {
            "kernels": {
                "test_distributed_throughput[planned-float64-D3Q19]": {
                    "mflups": 2.0
                },
            }
        }
        ok, lines = module.compare(RECORD, current, "planned+distributed", 0.30)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_no_comparable_entries_fails_loudly(self):
        module = load_comparator()
        ok, lines = module.compare(RECORD, {"kernels": {}}, "roll", 0.30)
        assert not ok
        assert "no comparable" in lines[0]
