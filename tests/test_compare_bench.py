"""The CI benchmark regression gate (benchmarks/compare_bench.py)."""

import importlib.util
from pathlib import Path

COMPARATOR = Path(__file__).resolve().parent.parent / "benchmarks" / "compare_bench.py"


def load_comparator():
    spec = importlib.util.spec_from_file_location("compare_bench", COMPARATOR)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


RECORD = {
    "kernels": {
        "test_kernel_throughput[roll-float64-D3Q19]": {"mflups": 3.0},
        "test_kernel_throughput[roll-float32-D3Q19]": {"mflups": 8.0},
        "test_kernel_throughput[planned-float64-D3Q19]": {"mflups": 6.0},
        "test_distributed_throughput[planned-float64-D3Q19]": {"mflups": 5.0},
        "test_distributed_throughput[planned-float64-D3Q39]": {"mflups": 1.5},
        "test_distributed_throughput[planned-float32-D3Q19]": {"mflups": 9.0},
        "test_distributed_overhead": {"mean_s": 0.004},
    }
}


class TestSelection:
    def test_single_token_excludes_float32(self):
        module = load_comparator()
        assert module.kernel_mflups(RECORD, "roll") == {"D3Q19": 3.0}

    def test_plus_tokens_must_all_match(self):
        """planned+distributed separates the slab rows from the
        single-domain planned rows (both contain 'planned')."""
        module = load_comparator()
        assert module.kernel_mflups(RECORD, "planned+distributed") == {
            "D3Q19": 5.0,
            "D3Q39": 1.5,
        }

    def test_plain_planned_would_collide_by_design(self):
        """Documenting why the gate uses the + form: a bare 'planned'
        matches both suites (last match wins per lattice)."""
        module = load_comparator()
        found = module.kernel_mflups(RECORD, "planned")
        assert set(found) == {"D3Q19", "D3Q39"}


#: Schema-5 sparse rows alongside a dense planned row: the dense gate
#: must not absorb the sparse rows by the 'planned' substring, and the
#: sparse gate must key each fill separately.
SPARSE_RECORD = {
    "kernels": {
        "test_kernel_throughput[planned-float64-D3Q19]": {
            "mflups": 6.0,
            "kernel": "planned",
        },
        "test_sparse_kernel_throughput[sparse-planned-fill0.25]": {
            "mflups": 6.4,
            "kernel": "sparse-planned",
            "dtype": "float64",
            "lattice": "D3Q19",
            "fill": 0.25,
        },
        "test_sparse_kernel_throughput[sparse-planned-fill1]": {
            "mflups": 5.7,
            "kernel": "sparse-planned",
            "dtype": "float64",
            "lattice": "D3Q19",
            "fill": 1.0,
        },
        "test_sparse_kernel_throughput[sparse-legacy-fill0.25]": {
            "mflups": 2.1,
            "kernel": "sparse-legacy",
            "dtype": "float64",
            "lattice": "D3Q19",
            "fill": 0.25,
        },
    }
}


class TestSparseSelection:
    def test_dense_gate_excludes_sparse_rows(self):
        """A bare 'planned' gate must not pick up sparse-planned rows:
        their B(Q) includes gather-table traffic, so the MFLUP/s are
        not comparable with the dense kernel's."""
        module = load_comparator()
        assert module.kernel_mflups(SPARSE_RECORD, "planned") == {"D3Q19": 6.0}

    def test_sparse_gate_keys_each_fill(self):
        module = load_comparator()
        assert module.kernel_mflups(SPARSE_RECORD, "sparse-planned") == {
            "D3Q19@fill0.25": 6.4,
            "D3Q19@fill1": 5.7,
        }

    def test_sparse_rows_compare_per_fill(self):
        module = load_comparator()
        current = {
            "kernels": {
                "test_sparse_kernel_throughput[sparse-planned-fill0.25]": {
                    "mflups": 5.9,
                    "kernel": "sparse-planned",
                    "lattice": "D3Q19",
                    "fill": 0.25,
                },
            }
        }
        ok, lines = module.compare(SPARSE_RECORD, current, "sparse-planned", 0.30)
        assert ok and len(lines) == 1
        assert "fill0.25" in lines[0]


class TestCompare:
    def test_within_tolerance_passes(self):
        module = load_comparator()
        current = {
            "kernels": {
                "test_distributed_throughput[planned-float64-D3Q19]": {
                    "mflups": 4.0
                },
                "test_distributed_throughput[planned-float64-D3Q39]": {
                    "mflups": 1.2
                },
            }
        }
        ok, lines = module.compare(RECORD, current, "planned+distributed", 0.30)
        assert ok
        assert len(lines) == 2

    def test_regression_beyond_tolerance_fails(self):
        module = load_comparator()
        current = {
            "kernels": {
                "test_distributed_throughput[planned-float64-D3Q19]": {
                    "mflups": 2.0
                },
            }
        }
        ok, lines = module.compare(RECORD, current, "planned+distributed", 0.30)
        assert not ok
        assert any("REGRESSION" in line for line in lines)

    def test_no_comparable_entries_fails_loudly(self):
        module = load_comparator()
        ok, lines = module.compare(RECORD, {"kernels": {}}, "roll", 0.30)
        assert not ok
        assert "no comparable" in lines[0]


#: A minimal fitted calibration (repro.perf.model JSON layout): roll
#: float64 D3Q19 fitted at 3.0 MFLUP/s over B=456 bytes/cell.
CALIBRATION = {
    "schema": 1,
    "host": "test-host",
    "entries": [
        {
            "kernel": "roll",
            "mode": "single",
            "dtype": "float64",
            "lattice": "D3Q19",
            "bytes_per_cell": 456,
            "beta": 3.0 * 456 * 1e6,
            "mflups": 3.0,
            "n": 3,
            "spread": 0.05,
        }
    ],
}


def model_record(mflups: float) -> dict:
    """A schema-4-style record: one fitted row plus rows the gate skips."""
    return {
        "kernels": {
            "test_kernel_throughput[roll-float64-D3Q19]": {
                "mflups": mflups,
                "kernel": "roll",
                "dtype": "float64",
                "bytes_per_cell": 456,
            },
            # float32 cell is not in CALIBRATION -> skipped, not failed.
            "test_kernel_throughput[roll-float32-D3Q19]": {
                "mflups": 8.0,
                "kernel": "roll",
                "dtype": "float32",
            },
            # Non-throughput rows never participate.
            "test_distributed_overhead": {"mean_s": 0.004},
        }
    }


class TestModelGate:
    def test_measured_near_prediction_passes(self):
        module = load_comparator()
        ok, lines = module.model_check(model_record(3.0), CALIBRATION, slack=0.50)
        assert ok
        assert len(lines) == 1  # only the fitted (roll, f64, D3Q19) cell
        assert "roll single float64 D3Q19" in lines[0]

    def test_measured_far_below_prediction_fails(self):
        module = load_comparator()
        ok, lines = module.model_check(model_record(0.5), CALIBRATION, slack=0.50)
        assert not ok
        assert "MEASURED FAR BELOW MODEL" in lines[0]

    def test_measured_above_prediction_never_fails(self):
        module = load_comparator()
        ok, _ = module.model_check(model_record(30.0), CALIBRATION, slack=0.50)
        assert ok

    def test_no_fitted_rows_fails_loudly(self):
        module = load_comparator()
        ok, lines = module.model_check(
            {"kernels": {"test_other": {"mean_s": 0.1}}}, CALIBRATION, 0.50
        )
        assert not ok
        assert "no current rows" in lines[-1]

    def test_legacy_class_names_match_fitted_cells(self):
        module = load_comparator()
        record = {
            "kernels": {
                "test_kernel_throughput[RollKernel-D3Q19]": {"mflups": 2.9},
            }
        }
        ok, lines = module.model_check(record, CALIBRATION, slack=0.50)
        assert ok and len(lines) == 1

    def test_sparse_rows_match_sparse_fitted_cells(self):
        """A fill-stamped row keys the 'sparse' mode (mirroring
        samples_from_bench) and checks against the row's own sparse
        bytes_per_cell, not the calibration's."""
        module = load_comparator()
        calibration = {
            "entries": [
                {
                    "kernel": "sparse-planned",
                    "mode": "sparse",
                    "dtype": "float64",
                    "lattice": "D3Q19",
                    "bytes_per_cell": 1140.0,
                    "beta": 6.0 * 1140.0 * 1e6,
                    "mflups": 6.0,
                }
            ]
        }
        record = {
            "kernels": {
                "test_sparse_kernel_throughput[sparse-planned-fill0.5]": {
                    "mflups": 5.8,
                    "kernel": "sparse-planned",
                    "dtype": "float64",
                    "lattice": "D3Q19",
                    "fill": 0.5,
                    "bytes_per_cell": 1140.0,
                },
            }
        }
        ok, lines = module.model_check(record, calibration, slack=0.50)
        assert ok and len(lines) == 1
        assert "sparse-planned sparse float64 D3Q19" in lines[0]

    def test_main_model_only_invocation(self, tmp_path, capsys):
        import json

        module = load_comparator()
        record_path = tmp_path / "bench.json"
        record_path.write_text(json.dumps(model_record(3.1)))
        calib_path = tmp_path / "calibration.json"
        calib_path.write_text(json.dumps(CALIBRATION))
        assert module.main([str(record_path), "--model", str(calib_path)]) == 0
        assert "gate passed" in capsys.readouterr().out

    def test_main_requires_current_or_model(self, tmp_path, capsys):
        import pytest

        module = load_comparator()
        with pytest.raises(SystemExit):
            module.main([str(tmp_path / "only.json")])
