"""The CI benchmark exporter (benchmarks/export_bench.py)."""

import importlib.util
import json
from pathlib import Path

EXPORTER = Path(__file__).resolve().parent.parent / "benchmarks" / "export_bench.py"


def load_exporter():
    spec = importlib.util.spec_from_file_location("export_bench", EXPORTER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


REPORT = {
    "machine_info": {
        "python_version": "3.12.0",
        "cpu": {"brand_raw": "Test CPU"},
        "node": "bench-host",
    },
    "benchmarks": [
        {
            "name": "test_kernel_throughput[RollKernel-D3Q19]",
            "stats": {"mean": 0.01},
            "extra_info": {"mflups": 3.28, "bytes_per_cell": 456},
        },
        {
            "name": "test_d3q39_costs_about_double",
            "stats": {"mean": 0.0001},
            "extra_info": {"measured_ratio": 2.4, "paper_ratio": 2.05},
        },
    ],
}


class TestExport:
    def test_record_shape(self):
        record = load_exporter().export(REPORT)
        assert record["schema"] == 5
        # No fullname in the report -> the legacy suite-name fallback.
        assert record["suite"] == "bench_kernels_real"
        assert record["cpu"] == "Test CPU"
        assert record["host"] == "bench-host"
        assert record["cpu_count"] >= 1
        kernels = record["kernels"]
        assert kernels["test_kernel_throughput[RollKernel-D3Q19]"] == {
            "mean_s": 0.01,
            "mflups": 3.28,
            "bytes_per_cell": 456,
            "dtype": "float64",
        }
        assert "measured_ratio" in kernels["test_d3q39_costs_about_double"]
        # Non-throughput rows are not stamped with a dtype.
        assert "dtype" not in kernels["test_d3q39_costs_about_double"]

    def test_dtype_from_name_and_extra_info(self):
        report = {
            "machine_info": {},
            "benchmarks": [
                {
                    "name": "test_kernel_throughput[planned-float32-D3Q19]",
                    "stats": {"mean": 0.005},
                    "extra_info": {"mflups": 9.7},
                },
                {
                    "name": "test_kernel_throughput[planned-D3Q19]",
                    "stats": {"mean": 0.005},
                    "extra_info": {"mflups": 5.8, "dtype": "float32"},
                },
            ],
        }
        kernels = load_exporter().export(report)["kernels"]
        assert (
            kernels["test_kernel_throughput[planned-float32-D3Q19]"]["dtype"]
            == "float32"
        )
        # An explicit extra-info dtype is never overridden by the name.
        assert kernels["test_kernel_throughput[planned-D3Q19]"]["dtype"] == "float32"

    def test_empty_report_exports_no_kernels(self):
        assert load_exporter().export({"benchmarks": []})["kernels"] == {}

    def test_suite_detected_from_fullname(self):
        """Schema 5: the suite field names the bench module that ran."""
        report = {
            "machine_info": {},
            "benchmarks": [
                {
                    "name": "test_sparse_kernel_throughput[sparse-planned-fill0.5]",
                    "fullname": (
                        "benchmarks/bench_sparse_kernels.py::"
                        "test_sparse_kernel_throughput[sparse-planned-fill0.5]"
                    ),
                    "stats": {"mean": 0.003},
                    "extra_info": {
                        "mflups": 5.6,
                        "kernel": "sparse-planned",
                        "dtype": "float64",
                        "fill": 0.5,
                        "bytes_per_cell": 1140.0,
                    },
                },
            ],
        }
        record = load_exporter().export(report)
        assert record["suite"] == "bench_sparse_kernels"
        # The fill column flows through untouched (the perf-model fitter
        # keys the B(Q) fill term on it).
        entry = record["kernels"][
            "test_sparse_kernel_throughput[sparse-planned-fill0.5]"
        ]
        assert entry["fill"] == 0.5
        assert entry["bytes_per_cell"] == 1140.0


class TestMain:
    def test_writes_artifact_and_prints_mflups(self, tmp_path, capsys):
        module = load_exporter()
        report = tmp_path / "report.json"
        out = tmp_path / "BENCH_PR3.json"
        report.write_text(json.dumps(REPORT))
        assert module.main([str(report), str(out)]) == 0
        captured = capsys.readouterr().out
        assert "2 benchmark(s)" in captured
        assert "3.28 MFLUP/s" in captured
        record = json.loads(out.read_text())
        assert record["schema"] == 5
        assert record["host"] == "bench-host"
        assert len(record["kernels"]) == 2

    def test_usage_error(self, capsys):
        assert load_exporter().main(["just-one-arg"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_empty_report_fails(self, tmp_path, capsys):
        module = load_exporter()
        report = tmp_path / "report.json"
        report.write_text(json.dumps({"benchmarks": []}))
        assert module.main([str(report), str(tmp_path / "out.json")]) == 1
        assert "no benchmarks" in capsys.readouterr().err
