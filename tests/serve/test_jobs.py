"""JobStore: disk-backed records, derived status, idempotent queueing."""

import pytest

from repro import api
from repro.scenarios.scheduler import LeaseBoard, WorkQueue
from repro.serve.jobs import JobStore

CASE = "taylor-green"
SMALL = {"shape": [10, 10, 4]}


def submit_small(store, tau=0.7):
    return store.submit_case(
        case=CASE, overrides={**SMALL, "tau": tau}, steps=5
    )


class TestSubmitCase:
    def test_cold_submission_enqueues_and_persists(self, tmp_path):
        store = JobStore(tmp_path)
        record, payload = submit_small(store)
        assert payload is None
        assert store.get(record.id) == record
        queue = WorkQueue.load(tmp_path)
        assert [i.fingerprint for i in queue.items] == record.fingerprints
        assert store.status_payload(record)["status"] == "queued"

    def test_resubmission_is_idempotent(self, tmp_path):
        store = JobStore(tmp_path)
        first, _ = submit_small(store)
        again, _ = submit_small(store)
        assert first.id == again.id
        assert len(WorkQueue.load(tmp_path).items) == 1

    def test_warm_submission_answers_without_queueing(self, tmp_path):
        outcome = api.run_case(
            CASE,
            steps=5,
            overrides=api.decode_overrides({**SMALL, "tau": 0.7}),
            cache_dir=tmp_path,
        )
        store = JobStore(tmp_path)
        record, payload = submit_small(store)
        assert payload == outcome.payload
        assert store.status_payload(record)["status"] == "done"
        with pytest.raises(Exception):
            WorkQueue.load(tmp_path)  # nothing was published

    def test_distinct_cases_share_one_queue(self, tmp_path):
        store = JobStore(tmp_path)
        a, _ = submit_small(store, tau=0.7)
        b, _ = submit_small(store, tau=0.8)
        queue = WorkQueue.load(tmp_path)
        fingerprints = [i.fingerprint for i in queue.items]
        assert a.fingerprints[0] in fingerprints
        assert b.fingerprints[0] in fingerprints


class TestSubmitSweep:
    def test_cold_sweep_enqueues_all_variants(self, tmp_path):
        store = JobStore(tmp_path)
        record, result = store.submit_sweep(
            case=CASE, grid={"tau": [0.7, 0.8]}, steps=5
        )
        assert result is None
        assert len(record.fingerprints) == 2
        assert len(WorkQueue.load(tmp_path).items) == 2

    def test_partially_warm_sweep_enqueues_the_cold_rest(self, tmp_path):
        api.run_case(
            CASE, steps=5, overrides={"tau": 0.7}, cache_dir=tmp_path
        )
        store = JobStore(tmp_path)
        record, result = store.submit_sweep(
            case=CASE, grid={"tau": [0.7, 0.8]}, steps=5
        )
        assert result is None
        assert len(WorkQueue.load(tmp_path).items) == 1
        states = store.variant_states(record)
        assert sorted(states.values()) == ["done", "queued"]

    def test_fully_warm_sweep_answers_immediately(self, tmp_path):
        api.run_sweep(CASE, {"tau": [0.7, 0.8]}, steps=5, cache_dir=tmp_path)
        store = JobStore(tmp_path)
        record, result = store.submit_sweep(
            case=CASE, grid={"tau": [0.7, 0.8]}, steps=5
        )
        assert result is not None and result.passed
        assert store.status_payload(record)["status"] == "done"


class TestDerivedStatus:
    def test_running_state_follows_a_live_lease(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit_small(store)
        board = LeaseBoard(tmp_path, owner="peer", ttl=60.0)
        assert board.acquire(record.fingerprints[0])
        payload = store.status_payload(record)
        assert payload["status"] == "running"
        board.release(record.fingerprints[0])
        assert store.status_payload(record)["status"] == "queued"

    def test_done_after_worker_drains(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit_small(store)
        api.run_worker(tmp_path, wait=True)
        payload = store.status_payload(record)
        assert payload["status"] == "done"
        assert payload["result"] == f"/v1/jobs/{record.id}/result"
        kind, body = store.result_response(record)
        assert kind == "case" and body["case"] == CASE

    def test_result_response_in_flight_is_none(self, tmp_path):
        store = JobStore(tmp_path)
        record, _ = submit_small(store)
        assert store.result_response(record) is None

    def test_unknown_and_hostile_ids_are_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.get("feedbeef00") is None
        assert store.get("../queue") is None
        assert store.get("") is None

    def test_queue_depth_tracks_cold_items(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.queue_depth() == 0
        submit_small(store)
        assert store.queue_depth() == 1
        api.run_worker(tmp_path, wait=True)
        assert store.queue_depth() == 0


class TestQuarantinedVariants:
    def test_quarantine_surfaces_as_failed(self, tmp_path):
        from repro.resilience import FailureLedger

        store = JobStore(tmp_path)
        record, _ = submit_small(store)
        (fingerprint,) = record.fingerprints
        ledger = FailureLedger(tmp_path, max_attempts=1)
        try:
            raise RuntimeError("diverged")
        except RuntimeError as exc:
            ledger.record_failure(fingerprint, exc, worker="w1")

        states = store.variant_states(record)
        assert states[fingerprint] == "failed"
        payload = store.status_payload(record)
        assert payload["status"] == "failed"
        assert payload["variants"]["failed"] == 1
        assert payload["result"] is None

        # clearing the ledger entry makes the variant schedulable again
        ledger.clear(fingerprint)
        assert store.variant_states(record)[fingerprint] == "queued"
