"""Endpoint contract for ``repro serve``.

The load-bearing guarantees: a warm ``POST /v1/case`` answers from the
cache with *zero* simulation steps and a body byte-identical to
``repro case --json``; cold work drains through the ordinary
sweep-worker machinery and polls queued -> running -> done; malformed
requests come back as structured 400 envelopes, never tracebacks.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.__main__ import main as repro_main
from repro.scenarios.scheduler import LeaseBoard
from repro.serve import create_server

CASE = "taylor-green"
SET_ARGS = ["--set", "shape=12,12,6", "--steps", "5"]
BODY = {"case": CASE, "steps": 5, "overrides": {"shape": [12, 12, 6]}}


@pytest.fixture()
def server(tmp_path):
    srv = create_server(tmp_path, port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def request(server, path, body=None):
    """(status, raw bytes, decoded envelope) for one request."""
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        server.url + path, data=data, method="POST" if body else "GET"
    )
    try:
        with urllib.request.urlopen(req) as resp:
            raw = resp.read()
            return resp.status, raw, json.loads(raw)
    except urllib.error.HTTPError as err:
        raw = err.read()
        return err.code, raw, json.loads(raw)


class TestWarmCase:
    def test_body_byte_identical_to_cli_json(self, server, tmp_path, capsys):
        assert (
            repro_main(
                ["case", CASE, *SET_ARGS, "--json", "--cache-dir", str(tmp_path)]
            )
            == 0
        )
        cli_bytes = capsys.readouterr().out.encode()
        status, raw, envelope = request(server, "/v1/case", BODY)
        assert status == 200
        assert raw == cli_bytes
        assert envelope["schema"] == 1 and envelope["kind"] == "case"

    def test_warm_hit_executes_zero_steps(self, server, tmp_path, monkeypatch):
        api.run_case(
            CASE,
            steps=5,
            overrides=api.decode_overrides(BODY["overrides"]),
            cache_dir=tmp_path,
        )
        from repro.scenarios.runner import CaseRunner

        def boom(self, **kwargs):
            raise AssertionError("warm POST /v1/case must not simulate")

        monkeypatch.setattr(CaseRunner, "run", boom)
        status, _, envelope = request(server, "/v1/case", BODY)
        assert status == 200
        assert envelope["data"]["case"] == CASE


class TestColdLifecycle:
    def test_queued_to_done_through_a_worker(self, server, tmp_path):
        status, _, envelope = request(server, "/v1/case", BODY)
        assert status == 202
        job = envelope["data"]
        assert job["status"] == "queued"
        job_id = job["id"]

        status, _, err = request(server, f"/v1/jobs/{job_id}/result")
        assert status == 409
        assert "not complete" in err["data"]["error"]["message"]

        # a manually held lease is a deterministic "running" signal
        board = LeaseBoard(tmp_path, owner="peer", ttl=60.0)
        fingerprint = list(job["fingerprints"])[0]
        assert board.acquire(fingerprint)
        status, _, envelope = request(server, f"/v1/jobs/{job_id}")
        assert envelope["data"]["status"] == "running"
        board.release(fingerprint)

        report = api.run_worker(tmp_path, wait=True)
        assert len(report.completed) == 1

        status, _, envelope = request(server, f"/v1/jobs/{job_id}")
        assert status == 200
        assert envelope["data"]["status"] == "done"
        assert envelope["data"]["result"] == f"/v1/jobs/{job_id}/result"

        status, raw, envelope = request(server, f"/v1/jobs/{job_id}/result")
        assert status == 200
        assert envelope["kind"] == "case"
        # ...and now the same POST is warm and byte-identical
        status, warm_raw, _ = request(server, "/v1/case", BODY)
        assert status == 200
        assert warm_raw == raw

    def test_sweep_submission_and_assembly(self, server, tmp_path):
        body = {"case": CASE, "steps": 5, "grid": {"tau": [0.7, 0.8]}}
        status, _, envelope = request(server, "/v1/sweep", body)
        assert status == 202
        job_id = envelope["data"]["id"]
        assert envelope["data"]["variants"]["queued"] == 2

        api.run_worker(tmp_path, wait=True)

        status, _, envelope = request(server, f"/v1/jobs/{job_id}/result")
        assert status == 200
        assert envelope["kind"] == "sweep"
        assert envelope["data"]["passed"] is True
        assert len(envelope["data"]["results"]) == 2

        # resubmission is now fully warm: a 200 with the same payload
        status, _, warm = request(server, "/v1/sweep", body)
        assert status == 200
        assert warm["data"] == envelope["data"]


class TestValidation:
    def assert_error(self, triple, status, fragment):
        code, _, envelope = triple
        assert code == status
        assert envelope["kind"] == "error"
        assert envelope["data"]["status"] == status
        error = envelope["data"]["error"]
        assert isinstance(error["type"], str) and error["type"]
        assert fragment in error["message"]

    def test_malformed_json_is_a_structured_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/case", data=b"{nope", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        envelope = json.loads(err.value.read())
        assert err.value.code == 400
        assert envelope["kind"] == "error"
        assert "not valid JSON" in envelope["data"]["error"]["message"]

    def test_unknown_field(self, server):
        self.assert_error(
            request(server, "/v1/case", {"case": CASE, "step": 5}),
            400,
            "unknown field(s): step",
        )

    def test_missing_case(self, server):
        self.assert_error(
            request(server, "/v1/case", {"overrides": {}}), 400, "'case'"
        )

    def test_unknown_case(self, server):
        self.assert_error(
            request(server, "/v1/case", {"case": "nope"}), 400, "unknown case"
        )

    def test_kernel_auto_is_rejected(self, server):
        self.assert_error(
            request(server, "/v1/case", {"case": CASE, "kernel": "auto"}),
            400,
            "timing-dependent",
        )

    def test_sweep_needs_a_grid_of_lists(self, server):
        self.assert_error(
            request(server, "/v1/sweep", {"case": CASE}), 400, "'grid'"
        )
        self.assert_error(
            request(server, "/v1/sweep", {"case": CASE, "grid": {"tau": 0.7}}),
            400,
            "non-empty list",
        )

    def test_unknown_routes_and_jobs(self, server):
        self.assert_error(request(server, "/v1/nope"), 404, "no route")
        self.assert_error(
            request(server, "/v1/jobs/feedbeef00"), 404, "unknown job"
        )
        # traversal never reaches the job store: the segment regex
        # refuses the slash, so it is just an unrouted path
        self.assert_error(
            request(server, "/v1/jobs/../queue"), 404, "no route"
        )


class TestReadOnlyEndpoints:
    def test_health_and_cases(self, server, tmp_path):
        status, _, envelope = request(server, "/v1/health")
        assert status == 200
        assert envelope["data"]["ok"] is True
        assert envelope["data"]["root"] == str(tmp_path)
        status, _, envelope = request(server, "/v1/cases")
        names = [c["name"] for c in envelope["data"]["cases"]]
        assert CASE in names

    def test_fleet_byte_identical_to_status_cli(
        self, server, tmp_path, capsys
    ):
        api.run_sweep(CASE, {"tau": [0.7]}, steps=5, cache_dir=tmp_path)
        assert (
            repro_main(["sweep-status", "--cache-dir", str(tmp_path), "--json"])
            == 0
        )
        cli_bytes = capsys.readouterr().out.encode()
        status, raw, envelope = request(server, "/v1/fleet")
        assert status == 200
        assert raw == cli_bytes
        assert envelope["kind"] == "fleet"


def request_with_headers(server, path):
    """(status, headers, decoded envelope) for one GET."""
    req = urllib.request.Request(server.url + path)
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, resp.headers, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, err.headers, json.loads(err.read())


class TestHardening:
    """Degradation contract: structured refusals, never hung threads."""

    def test_error_bodies_have_a_stable_nested_schema(self, server):
        status, _, envelope = request(server, "/v1/nope")
        assert status == 404
        assert envelope["kind"] == "error"
        assert envelope["data"] == {
            "status": 404,
            "error": {
                "type": "not-found",
                "message": "no route for GET /v1/nope",
            },
        }

    def test_draining_server_refuses_with_503_and_retry_after(self, server):
        server.draining = True
        try:
            status, headers, envelope = request_with_headers(
                server, "/v1/health"
            )
        finally:
            server.draining = False
        assert status == 503
        assert headers["Retry-After"] == "1"
        assert envelope["data"]["error"]["type"] == "overloaded"
        assert "draining" in envelope["data"]["error"]["message"]
        # back in service once draining clears
        status, _, _ = request(server, "/v1/health")
        assert status == 200

    def test_overloaded_server_sheds_load(self, tmp_path):
        from repro.serve import create_server

        srv = create_server(tmp_path, port=0, max_inflight=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            status, headers, envelope = request_with_headers(srv, "/v1/health")
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)
        assert status == 503
        assert headers["Retry-After"] == "1"
        assert "0 request(s) in flight" in envelope["data"]["error"]["message"]

    def test_unsupported_method_is_json_not_html(self, server):
        req = urllib.request.Request(server.url + "/v1/health", method="DELETE")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req)
        assert err.value.code == 501
        envelope = json.loads(err.value.read())
        assert envelope["kind"] == "error"
        assert envelope["data"]["error"]["type"] == "http"

    def test_drain_waits_for_idle(self, server):
        assert server.try_begin_request() is None
        done = []

        def finish():
            time.sleep(0.1)
            server.end_request()
            done.append(True)

        threading.Thread(target=finish).start()
        assert server.drain(timeout=5.0)
        assert done == [True]
        server.draining = False

    def test_bad_limits_rejected(self, tmp_path):
        from repro.errors import ReproError
        from repro.serve import create_server

        with pytest.raises(ReproError, match="max_inflight"):
            create_server(tmp_path, port=0, max_inflight=-1)
        with pytest.raises(ReproError, match="request_timeout"):
            create_server(tmp_path, port=0, request_timeout=0)
