"""Tests for Guo body-force coupling."""

import numpy as np
import pytest

from repro.core import GuoForcing, Simulation, total_momentum, uniform_flow
from repro.errors import LatticeError


class TestValidation:
    def test_wrong_length(self, q19):
        with pytest.raises(LatticeError, match="components"):
            GuoForcing(q19, (1.0, 0.0))


class TestMomentumInput:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_momentum_grows_at_force_rate(self, lname):
        """Periodic forced fluid gains exactly F * N per step."""
        from repro.lattice import get_lattice

        lat = get_lattice(lname)
        shape = (6, 6, 6)
        force = (2e-6, 0.0, 0.0)
        sim = Simulation(lat, shape, tau=0.9, forcing=GuoForcing(lat, force))
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        steps = 50
        sim.run(steps)
        mom = total_momentum(lat, sim.f)
        n = sim.num_cells
        # Guo coupling injects exactly F per cell per step
        expected = force[0] * n * steps
        assert mom[0] == pytest.approx(expected, rel=1e-9)
        assert abs(mom[1]) < 1e-12 and abs(mom[2]) < 1e-12

    def test_velocity_shift_applied_to_output(self, q19):
        shape = (4, 4, 4)
        force = (1e-5, 0.0, 0.0)
        sim = Simulation(q19, shape, tau=0.8, forcing=GuoForcing(q19, force))
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(10)
        _, u_corr = sim.macroscopic()
        # corrected velocity samples the trajectory at t = N + 1/2
        assert u_corr[0].mean() == pytest.approx(10.5 * force[0], rel=1e-8)

    def test_uniform_acceleration_matches_newton(self, q39):
        """du/dt = F/rho for a uniform periodic fluid."""
        shape = (5, 5, 5)
        force = (0.0, 3e-6, 0.0)
        sim = Simulation(q39, shape, tau=1.1, forcing=GuoForcing(q39, force))
        rho, u = uniform_flow(shape, rho0=1.0)
        sim.initialize(rho, u)
        sim.run(100)
        _, u_out = sim.macroscopic()
        # du/dt = F/rho, sampled at the Guo half step (t = N + 1/2)
        assert np.allclose(u_out[1], 100.5 * force[1], rtol=1e-8)

    def test_source_term_zero_for_zero_force(self, q19):
        forcing = GuoForcing(q19, (0.0, 0.0, 0.0))
        u = np.zeros((3, 2, 2, 2))
        s = forcing.source_term(u, omega=1.0)
        assert np.abs(s).max() == 0.0

    def test_regularized_collision_rejected_with_forcing(self, q19):
        from repro.core import RegularizedBGKCollision

        with pytest.raises(NotImplementedError):
            Simulation(
                q19,
                (4, 4, 4),
                collision=RegularizedBGKCollision(q19, tau=0.8),
                forcing=GuoForcing(q19, (1e-6, 0, 0)),
            )
