"""Tests for the Hermite equilibria (paper Eqs. 2-3)."""

import numpy as np
import pytest

from repro.core import equilibrium, equilibrium_order_for
from repro.errors import LatticeError


class TestOrderResolution:
    def test_native_orders(self, q19, q39):
        assert equilibrium_order_for(q19, None) == 2
        assert equilibrium_order_for(q39, None) == 3

    def test_explicit_order_within_support(self, q39):
        assert equilibrium_order_for(q39, 2) == 2

    def test_third_order_on_d3q19_rejected(self, q19):
        # the reason the paper needs D3Q39 at all
        with pytest.raises(LatticeError, match="higher-isotropy"):
            equilibrium_order_for(q19, 3)

    def test_out_of_range_order(self, q39):
        with pytest.raises(LatticeError):
            equilibrium_order_for(q39, 0)
        with pytest.raises(LatticeError):
            equilibrium_order_for(q39, 4)


class TestConservation:
    """feq must carry exactly the density and momentum it was built from."""

    @pytest.mark.parametrize("order", [1, 2])
    def test_mass_all_lattices(self, lattice, order, make_random_state, small_shape):
        rho, u = make_random_state(lattice, small_shape)
        feq = equilibrium(lattice, rho, u, order=order)
        assert np.allclose(feq.sum(axis=0), rho, atol=1e-14)

    @pytest.mark.parametrize("order", [1, 2])
    def test_momentum_all_lattices(self, lattice, order, make_random_state, small_shape):
        rho, u = make_random_state(lattice, small_shape)
        feq = equilibrium(lattice, rho, u, order=order)
        c = lattice.velocities.astype(float)
        mom = np.tensordot(c.T, feq, axes=([1], [0]))
        assert np.allclose(mom, rho[None] * u, atol=1e-14)

    def test_third_order_conserves_on_d3q39(self, q39, make_random_state, small_shape):
        rho, u = make_random_state(q39, small_shape)
        feq = equilibrium(q39, rho, u, order=3)
        c = q39.velocities.astype(float)
        assert np.allclose(feq.sum(axis=0), rho, atol=1e-14)
        mom = np.tensordot(c.T, feq, axes=([1], [0]))
        assert np.allclose(mom, rho[None] * u, atol=1e-14)

    def test_second_moment_matches_ideal_gas(self, paper_lattice, make_random_state, small_shape):
        """Pi^eq_ab = rho cs2 delta_ab + rho u_a u_b at order >= 2."""
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape, amplitude=0.01)
        feq = equilibrium(lat, rho, u)
        c = lat.velocities.astype(float)
        pi = np.einsum("qa,qb,q...->ab...", c, c, feq)
        expected = lat.cs2_float * rho * np.eye(3)[:, :, None, None, None]
        expected = expected + rho[None, None] * np.einsum("a...,b...->ab...", u, u)
        assert np.allclose(pi, expected, atol=1e-12)


class TestPointwiseFormula:
    """Vectorized equilibrium equals the scalar textbook formula."""

    def test_against_scalar_evaluation(self, q39):
        rho = np.array([[[1.05]]])
        u = np.array([0.03, -0.02, 0.01]).reshape(3, 1, 1, 1)
        feq = equilibrium(q39, rho, u, order=3)
        cs2 = q39.cs2_float
        u2 = float((u[0] ** 2 + u[1] ** 2 + u[2] ** 2).item())
        for i in range(q39.q):
            cu = float(np.dot(q39.velocities[i], u[:, 0, 0, 0]))
            expected = (
                q39.weights[i]
                * 1.05
                * (
                    1.0
                    + cu / cs2
                    + 0.5 * (cu / cs2) ** 2
                    - 0.5 * u2 / cs2
                    + cu / (6 * cs2**2) * (cu**2 / cs2 - 3 * u2)
                )
            )
            assert feq[i, 0, 0, 0] == pytest.approx(expected, rel=1e-14)

    def test_zero_velocity_gives_weights(self, lattice):
        feq = equilibrium(lattice, np.ones((2, 2, 2)), np.zeros((3, 2, 2, 2)))
        for i in range(lattice.q):
            assert np.allclose(feq[i], lattice.weights[i])

    def test_positive_at_moderate_mach(self, paper_lattice):
        rho = np.ones((2, 2, 2))
        u = np.full((3, 2, 2, 2), 0.05)
        feq = equilibrium(paper_lattice, rho, u)
        assert (feq > 0).all()


class TestBuffersAndErrors:
    def test_out_buffer_reused(self, q19):
        rho = np.ones((3, 3, 3))
        u = np.zeros((3, 3, 3, 3))
        out = np.empty((19, 3, 3, 3))
        result = equilibrium(q19, rho, u, out=out)
        assert result is out

    def test_wrong_velocity_dim_raises(self, q19):
        with pytest.raises(LatticeError, match="leading dim"):
            equilibrium(q19, np.ones((3, 3, 3)), np.zeros((2, 3, 3, 3)))

    def test_galilean_shift_order2_error_is_cubic(self, q19):
        """Order-2 truncation error grows as u^3 (sanity on truncation)."""
        rho = np.ones((1, 1, 1))
        errs = []
        for mag in (0.02, 0.04):
            u = np.full((3, 1, 1, 1), mag)
            feq2 = equilibrium(q19, rho, u, order=2)
            feq1 = equilibrium(q19, rho, u, order=1)
            errs.append(np.abs(feq2 - feq1).max())
        # second-order term scales ~u^2: ratio ~4 for 2x velocity
        assert errs[1] / errs[0] == pytest.approx(4.0, rel=0.1)
