"""Tests for the indirect-addressing sparse domain."""

import tracemalloc

import numpy as np
import pytest

from repro.core import Simulation, shear_wave, sphere_mask
from repro.core.sparse import (
    SPARSE_AUTO_CANDIDATES,
    LegacySparseKernel,
    PlannedSparseKernel,
    SparseDomain,
    SparseSimulation,
    auto_select_sparse_kernel,
    build_sparse_gather_table,
    make_sparse_kernel,
)
from repro.errors import LatticeError


class TestSparseDomain:
    def test_all_fluid_neighbor_table_is_periodic_shift(self, q19):
        mask = np.zeros((4, 4, 4), dtype=bool)
        dom = SparseDomain(q19, mask)
        assert dom.num_fluid == 64
        assert dom.num_wall_links == 0
        # rest velocity pulls from itself
        rest = q19.rest_index
        assert np.array_equal(dom.pull_from[rest], np.arange(64))

    def test_wall_links_counted(self, q19):
        mask = np.zeros((4, 6, 4), dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        dom = SparseDomain(q19, mask)
        assert dom.num_fluid == 4 * 4 * 4
        # every fluid node adjacent to a wall has blocked links
        assert dom.num_wall_links > 0

    def test_no_fluid_rejected(self, q19):
        with pytest.raises(LatticeError, match="no fluid"):
            SparseDomain(q19, np.ones((3, 3, 3), dtype=bool))

    def test_scatter_gather_roundtrip(self, q19, rng):
        mask = rng.random((5, 5, 5)) < 0.3
        mask[0, 0, 0] = False
        dom = SparseDomain(q19, mask)
        values = rng.random(dom.num_fluid)
        dense = dom.scatter(values)
        assert np.isnan(dense[mask]).all()
        assert np.array_equal(dom.gather_from_dense(dense), values)


class TestSparseSimulation:
    def test_matches_dense_on_fully_fluid_box(self):
        """No walls: indirect addressing must equal the dense solver."""
        shape = (12, 6, 6)
        rho, u = shear_wave(shape, amplitude=1e-3)
        dense = Simulation("D3Q19", shape, tau=0.8)
        dense.initialize(rho, u)
        dense.run(10)

        sparse = SparseSimulation("D3Q19", np.zeros(shape, dtype=bool), tau=0.8)
        sparse.initialize(rho, u)
        sparse.run(10)
        rho_s = sparse.density_dense()
        from repro.core import density

        assert np.allclose(rho_s, density(dense.f), atol=1e-13)
        u_s = sparse.velocity_dense()
        from repro.core import macroscopic

        _, u_d = macroscopic(dense.lattice, dense.f)
        assert np.allclose(u_s, u_d, atol=1e-13)

    def test_mass_conserved_with_walls(self):
        shape = (6, 9, 6)
        mask = np.zeros(shape, dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        sim = SparseSimulation("D3Q19", mask, tau=0.8, force=(1e-6, 0, 0))
        sim.initialize(1.0)
        m0 = sim.total_mass
        sim.run(50)
        assert sim.total_mass == pytest.approx(m0, rel=1e-12)

    def test_forced_channel_gives_poiseuille_profile(self):
        """Half-way bounce-back channel: parabolic profile with zero
        velocity extrapolating to half a cell outside the fluid."""
        ny = 11
        shape = (4, ny + 2, 4)
        mask = np.zeros(shape, dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        g = 1e-6
        tau = 0.9
        sim = SparseSimulation("D3Q19", mask, tau=tau, force=(g, 0, 0))
        sim.initialize(1.0)
        sim.run(2000)
        u = sim.velocity_dense()
        profile = u[0][:, 1:-1, :].mean(axis=(0, 2))
        nu = (1 / 3) * (tau - 0.5)
        y = np.arange(ny) + 0.5  # walls at y=0 and y=ny (half-way)
        analytic = g / (2 * nu) * y * (ny - y)
        assert np.allclose(profile, analytic, rtol=0.03)

    def test_multi_speed_lattice_rejected(self):
        with pytest.raises(LatticeError, match="k=1"):
            SparseSimulation("D3Q39", np.zeros((6, 6, 6), dtype=bool))

    def test_memory_savings(self):
        """An artery-like domain stores only the fluid fraction."""
        shape = (16, 16, 16)
        from repro.core import sphere_mask

        solid = ~sphere_mask(shape, (8, 8, 8), 5.0)  # fluid = sphere interior
        sim = SparseSimulation("D3Q19", solid, tau=0.8)
        dense_bytes = 19 * 8 * np.prod(shape)
        assert sim.memory_bytes < 0.2 * dense_bytes

    def test_flow_around_obstacle_is_stable_and_deflected(self):
        from repro.core import sphere_mask

        shape = (16, 12, 12)
        mask = sphere_mask(shape, (8, 6, 6), 2.5)
        sim = SparseSimulation("D3Q19", mask, tau=0.9, force=(2e-6, 0, 0))
        sim.initialize(1.0)
        sim.run(400)
        u = sim.velocity_dense()
        assert np.isfinite(sim.f).all()
        # flow goes around: transverse velocity appears near the sphere
        assert np.abs(u[1]).max() > 1e-7
        # and the mean axial flow is positive
        assert u[0].mean() > 0


class TestSparseDtypePolicy:
    def test_default_is_float64(self, q19):
        sim = SparseSimulation("D3Q19", np.zeros((4, 4, 4), dtype=bool))
        sim.initialize(1.0)
        assert sim.f.dtype == np.float64

    def test_float32_populations_and_memory(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[:, 0, :] = mask[:, -1, :] = True
        f64 = SparseSimulation("D3Q19", mask, tau=0.8)
        f32 = SparseSimulation("D3Q19", mask, tau=0.8, dtype="float32")
        f64.initialize(1.0)
        f32.initialize(1.0)
        assert f32.f.dtype == np.float32
        assert f64.memory_bytes == 2 * f32.memory_bytes

    def test_float32_tracks_float64(self):
        """The sparse solver under the dtype policy stays within single
        precision of the float64 run (forced channel, walls, steps)."""
        mask = np.zeros((6, 8, 6), dtype=bool)
        mask[:, 0, :] = mask[:, -1, :] = True
        runs = {}
        for dtype in ("float64", "float32"):
            sim = SparseSimulation(
                "D3Q19", mask, tau=0.9, force=(1e-5, 0, 0), dtype=dtype
            )
            sim.initialize(1.0)
            sim.run(50)
            assert sim.f.dtype == np.dtype(dtype)
            runs[dtype] = sim.f.astype(np.float64)
        assert np.allclose(runs["float32"], runs["float64"], atol=1e-5)

    def test_float32_scatter_preserves_dtype(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        sim = SparseSimulation("D3Q19", mask, tau=0.8, dtype="float32")
        sim.initialize(1.0)
        assert sim.density_dense().dtype == np.float32
        assert sim.velocity_dense().dtype == np.float32

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(LatticeError, match="unsupported"):
            SparseSimulation(
                "D3Q19", np.zeros((4, 4, 4), dtype=bool), dtype="int32"
            )


def _walled_sphere_mask(shape):
    """Walls + sphere obstacle: wall links on every boundary kind."""
    centre = tuple(s / 2 for s in shape)
    mask = sphere_mask(shape, centre, min(shape) / 3.5)
    mask[:, 0, :] = mask[:, -1, :] = True
    return mask


class TestSparseKernelEquivalence:
    """Planned vs legacy rung: same arithmetic, matched to the dense
    kernel matrix's tolerances (the gather is an exact permutation)."""

    @pytest.mark.parametrize("lattice", ["D3Q15", "D3Q19", "D3Q27"])
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_planned_matches_legacy(self, lattice, dtype):
        shape = (10, 9, 8)
        mask = _walled_sphere_mask(shape)
        runs = {}
        for kernel in ("legacy", "planned"):
            sim = SparseSimulation(
                lattice, mask, tau=0.8, force=(1e-5, 0, 0),
                dtype=dtype, kernel=kernel,
            )
            sim.initialize(1.0)
            sim.run(10)
            assert sim.kernel.name == f"sparse-{kernel}"
            runs[kernel] = sim.f.astype(np.float64)
        atol = 1e-13 if dtype == "float64" else 1e-5
        assert np.allclose(runs["planned"], runs["legacy"], atol=atol)

    def test_gather_table_fuses_stream_and_bounce_back(self, q19, rng):
        """One flat take must equal the two-array fancy-index gather."""
        mask = _walled_sphere_mask((8, 7, 6))
        dom = SparseDomain(q19, mask)
        table = build_sparse_gather_table(dom)
        f = rng.random((q19.q, dom.num_fluid))
        via_table = f.reshape(-1)[table].reshape(q19.q, dom.num_fluid)
        via_fancy = f[dom.pull_velocity, dom.pull_from]
        assert np.array_equal(via_table, via_fancy)

    def test_gather_table_is_writable_and_contiguous(self, q19):
        dom = SparseDomain(q19, _walled_sphere_mask((8, 7, 6)))
        table = build_sparse_gather_table(dom)
        assert table.flags.c_contiguous and table.flags.writeable
        assert table.shape == (q19.q * dom.num_fluid,)


class TestPlannedSparseKernelAllocation:
    def test_step_is_zero_allocation(self):
        """The tentpole claim: after construction, stepping the planned
        sparse kernel (with forcing) allocates nothing on the heap."""
        mask = _walled_sphere_mask((12, 10, 8))
        sim = SparseSimulation(
            "D3Q19", mask, tau=0.8, force=(1e-6, 0, 0), kernel="planned"
        )
        sim.initialize(1.0)
        sim.run(3)  # warm every code path before measuring
        tracemalloc.start()
        for _ in range(5):
            sim.step()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Generous slack for tracemalloc's own frames; far below one
        # population row (num_fluid * 8 bytes).
        assert peak < sim.domain.num_fluid * 8 // 2

    def test_legacy_step_allocates(self):
        """Contrast: the legacy rung's fancy-index gather allocates a
        fresh (Q, N) array every step — the cost the plan removes."""
        mask = _walled_sphere_mask((12, 10, 8))
        sim = SparseSimulation("D3Q19", mask, tau=0.8, kernel="legacy")
        sim.initialize(1.0)
        sim.run(3)
        tracemalloc.start()
        sim.step()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak >= sim.f.nbytes

    def test_planned_step_is_in_place(self):
        mask = np.zeros((6, 5, 4), dtype=bool)
        sim = SparseSimulation("D3Q19", mask, tau=0.8, kernel="planned")
        sim.initialize(1.0)
        buffer = sim.f
        sim.run(4)
        assert sim.f is buffer


class TestSparseKernelSelection:
    def _domain(self, q19):
        return SparseDomain(q19, _walled_sphere_mask((8, 7, 6)))

    def test_default_is_legacy(self, q19):
        kernel = make_sparse_kernel(None, self._domain(q19), 0.8)
        assert isinstance(kernel, LegacySparseKernel)

    @pytest.mark.parametrize(
        "name,cls",
        [
            ("legacy", LegacySparseKernel),
            ("planned", PlannedSparseKernel),
            ("sparse-legacy", LegacySparseKernel),
            ("sparse-planned", PlannedSparseKernel),
        ],
    )
    def test_names_and_aliases(self, q19, name, cls):
        kernel = make_sparse_kernel(name, self._domain(q19), 0.8)
        assert isinstance(kernel, cls)

    def test_instance_passthrough(self, q19):
        dom = self._domain(q19)
        kernel = PlannedSparseKernel(dom, 0.8)
        assert make_sparse_kernel(kernel, dom, 0.8) is kernel

    def test_unknown_name_rejected(self, q19):
        with pytest.raises(LatticeError, match="unknown sparse kernel"):
            make_sparse_kernel("roll", self._domain(q19), 0.8)

    def test_dense_make_kernel_routes_through_domain(self, q19):
        from repro.core.plan import make_kernel

        dom = self._domain(q19)
        kernel = make_kernel("sparse-planned", q19, 0.8, domain=dom)
        assert isinstance(kernel, PlannedSparseKernel)

    def test_dense_make_kernel_without_domain_rejects_sparse_names(self, q19):
        from repro.core.plan import make_kernel

        with pytest.raises(LatticeError, match="SparseDomain"):
            make_kernel("sparse-planned", q19, 0.8, shape=(6, 5, 4))

    def test_aos_layout_rejected_on_sparse_domain(self, q19):
        from repro.core.plan import make_kernel

        with pytest.raises(LatticeError, match="per fluid site"):
            make_kernel("sparse-planned", q19, 0.8, domain=self._domain(q19),
                        layout="aos")

    def test_registry_lists_sparse_rungs(self):
        from repro.core.plan import available_kernels

        names = available_kernels()
        assert "sparse-legacy" in names and "sparse-planned" in names


class TestSparseAutoSelection:
    def _domain(self, q19):
        return SparseDomain(q19, _walled_sphere_mask((8, 7, 6)))

    def test_race_then_cached_replay(self, q19, tmp_path):
        dom = self._domain(q19)
        calls = []

        def clock():
            import time as _time

            calls.append(None)
            return _time.perf_counter()

        first = auto_select_sparse_kernel(
            dom, 0.8, clock=clock, cache_dir=tmp_path, model=False
        )
        assert first.auto_provenance == "measured"
        assert calls  # the race timed something
        assert set(first.auto_timings) == set(SPARSE_AUTO_CANDIDATES)

        calls.clear()
        second = auto_select_sparse_kernel(
            dom, 0.8, clock=clock, cache_dir=tmp_path, model=False
        )
        assert second.auto_provenance == "cached"
        assert second.auto_cached and not calls
        assert second.name == first.name

    def test_cache_key_separates_fills(self, q19, tmp_path):
        """A verdict for one fill must not answer for another."""
        dense_dom = SparseDomain(q19, np.zeros((8, 7, 6), dtype=bool))
        auto_select_sparse_kernel(
            dense_dom, 0.8, cache_dir=tmp_path, model=False
        )
        sparse_dom = self._domain(q19)
        again = auto_select_sparse_kernel(
            sparse_dom, 0.8, cache_dir=tmp_path, model=False
        )
        assert again.auto_provenance == "measured"

    def test_calibrated_model_skips_the_race(self, q19, tmp_path, monkeypatch):
        import platform

        from repro.machine.roofline import sparse_bytes_per_cell
        from repro.perf.model import (
            SPARSE,
            MeasuredSample,
            fit_samples,
            save_calibration,
        )

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        samples = []
        for kernel, scale in (("sparse-planned", 1.0), ("sparse-legacy", 0.5)):
            for fill in (0.3, 0.9):
                b = sparse_bytes_per_cell(q19, "float64", fill=fill)
                samples.append(
                    MeasuredSample(
                        kernel=kernel,
                        lattice="D3Q19",
                        dtype="float64",
                        mflups=scale * 8e9 / (b * 1e6),
                        mode=SPARSE,
                        fill=fill,
                    )
                )
        save_calibration(fit_samples(samples, host=platform.node()))

        def boom():
            raise AssertionError("timing race ran despite a calibration")

        winner = auto_select_sparse_kernel(self._domain(q19), 0.8, clock=boom)
        assert winner.auto_provenance == "model"
        assert winner.name == "sparse-planned"

    def test_model_abstains_without_full_coverage(self, q19, tmp_path, monkeypatch):
        import platform

        from repro.perf.model import MeasuredSample, SPARSE, fit_samples, save_calibration

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        only_one = [
            MeasuredSample(
                kernel="sparse-planned",
                lattice="D3Q19",
                dtype="float64",
                mflups=50.0,
                mode=SPARSE,
                fill=0.5,
            )
        ]
        save_calibration(fit_samples(only_one, host=platform.node()))
        winner = auto_select_sparse_kernel(self._domain(q19), 0.8)
        assert winner.auto_provenance == "measured"

    def test_simulation_auto_kernel(self, q19, tmp_path):
        mask = _walled_sphere_mask((8, 7, 6))
        sim = SparseSimulation("D3Q19", mask, tau=0.8, kernel="auto")
        assert sim.kernel.name in SPARSE_AUTO_CANDIDATES
        sim.initialize(1.0)
        sim.run(3)
        assert np.isfinite(sim.f).all()
