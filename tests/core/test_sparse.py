"""Tests for the indirect-addressing sparse domain."""

import numpy as np
import pytest

from repro.core import Simulation, shear_wave
from repro.core.sparse import SparseDomain, SparseSimulation
from repro.errors import LatticeError


class TestSparseDomain:
    def test_all_fluid_neighbor_table_is_periodic_shift(self, q19):
        mask = np.zeros((4, 4, 4), dtype=bool)
        dom = SparseDomain(q19, mask)
        assert dom.num_fluid == 64
        assert dom.num_wall_links == 0
        # rest velocity pulls from itself
        rest = q19.rest_index
        assert np.array_equal(dom.pull_from[rest], np.arange(64))

    def test_wall_links_counted(self, q19):
        mask = np.zeros((4, 6, 4), dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        dom = SparseDomain(q19, mask)
        assert dom.num_fluid == 4 * 4 * 4
        # every fluid node adjacent to a wall has blocked links
        assert dom.num_wall_links > 0

    def test_no_fluid_rejected(self, q19):
        with pytest.raises(LatticeError, match="no fluid"):
            SparseDomain(q19, np.ones((3, 3, 3), dtype=bool))

    def test_scatter_gather_roundtrip(self, q19, rng):
        mask = rng.random((5, 5, 5)) < 0.3
        mask[0, 0, 0] = False
        dom = SparseDomain(q19, mask)
        values = rng.random(dom.num_fluid)
        dense = dom.scatter(values)
        assert np.isnan(dense[mask]).all()
        assert np.array_equal(dom.gather_from_dense(dense), values)


class TestSparseSimulation:
    def test_matches_dense_on_fully_fluid_box(self):
        """No walls: indirect addressing must equal the dense solver."""
        shape = (12, 6, 6)
        rho, u = shear_wave(shape, amplitude=1e-3)
        dense = Simulation("D3Q19", shape, tau=0.8)
        dense.initialize(rho, u)
        dense.run(10)

        sparse = SparseSimulation("D3Q19", np.zeros(shape, dtype=bool), tau=0.8)
        sparse.initialize(rho, u)
        sparse.run(10)
        rho_s = sparse.density_dense()
        from repro.core import density

        assert np.allclose(rho_s, density(dense.f), atol=1e-13)
        u_s = sparse.velocity_dense()
        from repro.core import macroscopic

        _, u_d = macroscopic(dense.lattice, dense.f)
        assert np.allclose(u_s, u_d, atol=1e-13)

    def test_mass_conserved_with_walls(self):
        shape = (6, 9, 6)
        mask = np.zeros(shape, dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        sim = SparseSimulation("D3Q19", mask, tau=0.8, force=(1e-6, 0, 0))
        sim.initialize(1.0)
        m0 = sim.total_mass
        sim.run(50)
        assert sim.total_mass == pytest.approx(m0, rel=1e-12)

    def test_forced_channel_gives_poiseuille_profile(self):
        """Half-way bounce-back channel: parabolic profile with zero
        velocity extrapolating to half a cell outside the fluid."""
        ny = 11
        shape = (4, ny + 2, 4)
        mask = np.zeros(shape, dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        g = 1e-6
        tau = 0.9
        sim = SparseSimulation("D3Q19", mask, tau=tau, force=(g, 0, 0))
        sim.initialize(1.0)
        sim.run(2000)
        u = sim.velocity_dense()
        profile = u[0][:, 1:-1, :].mean(axis=(0, 2))
        nu = (1 / 3) * (tau - 0.5)
        y = np.arange(ny) + 0.5  # walls at y=0 and y=ny (half-way)
        analytic = g / (2 * nu) * y * (ny - y)
        assert np.allclose(profile, analytic, rtol=0.03)

    def test_multi_speed_lattice_rejected(self):
        with pytest.raises(LatticeError, match="k=1"):
            SparseSimulation("D3Q39", np.zeros((6, 6, 6), dtype=bool))

    def test_memory_savings(self):
        """An artery-like domain stores only the fluid fraction."""
        shape = (16, 16, 16)
        from repro.core import sphere_mask

        solid = ~sphere_mask(shape, (8, 8, 8), 5.0)  # fluid = sphere interior
        sim = SparseSimulation("D3Q19", solid, tau=0.8)
        dense_bytes = 19 * 8 * np.prod(shape)
        assert sim.memory_bytes < 0.2 * dense_bytes

    def test_flow_around_obstacle_is_stable_and_deflected(self):
        from repro.core import sphere_mask

        shape = (16, 12, 12)
        mask = sphere_mask(shape, (8, 6, 6), 2.5)
        sim = SparseSimulation("D3Q19", mask, tau=0.9, force=(2e-6, 0, 0))
        sim.initialize(1.0)
        sim.run(400)
        u = sim.velocity_dense()
        assert np.isfinite(sim.f).all()
        # flow goes around: transverse velocity appears near the sphere
        assert np.abs(u[1]).max() > 1e-7
        # and the mean axial flow is positive
        assert u[0].mean() > 0


class TestSparseDtypePolicy:
    def test_default_is_float64(self, q19):
        sim = SparseSimulation("D3Q19", np.zeros((4, 4, 4), dtype=bool))
        sim.initialize(1.0)
        assert sim.f.dtype == np.float64

    def test_float32_populations_and_memory(self):
        mask = np.zeros((6, 6, 6), dtype=bool)
        mask[:, 0, :] = mask[:, -1, :] = True
        f64 = SparseSimulation("D3Q19", mask, tau=0.8)
        f32 = SparseSimulation("D3Q19", mask, tau=0.8, dtype="float32")
        f64.initialize(1.0)
        f32.initialize(1.0)
        assert f32.f.dtype == np.float32
        assert f64.memory_bytes == 2 * f32.memory_bytes

    def test_float32_tracks_float64(self):
        """The sparse solver under the dtype policy stays within single
        precision of the float64 run (forced channel, walls, steps)."""
        mask = np.zeros((6, 8, 6), dtype=bool)
        mask[:, 0, :] = mask[:, -1, :] = True
        runs = {}
        for dtype in ("float64", "float32"):
            sim = SparseSimulation(
                "D3Q19", mask, tau=0.9, force=(1e-5, 0, 0), dtype=dtype
            )
            sim.initialize(1.0)
            sim.run(50)
            assert sim.f.dtype == np.dtype(dtype)
            runs[dtype] = sim.f.astype(np.float64)
        assert np.allclose(runs["float32"], runs["float64"], atol=1e-5)

    def test_float32_scatter_preserves_dtype(self):
        mask = np.zeros((4, 4, 4), dtype=bool)
        sim = SparseSimulation("D3Q19", mask, tau=0.8, dtype="float32")
        sim.initialize(1.0)
        assert sim.density_dense().dtype == np.float32
        assert sim.velocity_dense().dtype == np.float32

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(LatticeError, match="unsupported"):
            SparseSimulation(
                "D3Q19", np.zeros((4, 4, 4), dtype=bool), dtype="int32"
            )
