"""Cross-validation of the interchangeable stream+collide kernels."""

import numpy as np
import pytest

from repro.core import FusedGatherKernel, NaiveKernel, RollKernel, equilibrium
from repro.lattice import get_lattice


def _initial_state(lattice, shape, seed=7):
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.02 * rng.standard_normal(shape)
    u = 0.02 * rng.standard_normal((3, *shape))
    return equilibrium(lattice, rho, u) + 1e-4 * rng.standard_normal(
        (lattice.q, *shape)
    )


class TestKernelEquivalence:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_roll_equals_naive(self, lname):
        """The vectorized kernel reproduces the paper's Fig. 3/4
        pseudocode (transcribed literally) to machine precision."""
        lat = get_lattice(lname)
        shape = (5, 4, 3)
        f = _initial_state(lat, shape)
        naive = NaiveKernel(lat, tau=0.8).step(f.copy())
        roll = RollKernel(lat, tau=0.8).step(f.copy())
        assert np.allclose(roll, naive, atol=1e-13)

    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_fused_equals_roll(self, lname):
        lat = get_lattice(lname)
        shape = (6, 5, 4)
        f = _initial_state(lat, shape)
        roll = RollKernel(lat, tau=0.9).step(f.copy())
        fused = FusedGatherKernel(lat, tau=0.9).step(f.copy())
        assert np.allclose(fused, roll, atol=1e-13)

    def test_multi_step_equivalence(self, q19):
        shape = (5, 5, 5)
        f = _initial_state(q19, shape)
        k1, k2 = RollKernel(q19, 0.7), FusedGatherKernel(q19, 0.7)
        a, b = f.copy(), f.copy()
        for _ in range(5):
            a = k1.step(a)
            b = k2.step(b)
        assert np.allclose(a, b, atol=1e-12)

    def test_gather_table_rebuilt_on_shape_change(self, q19):
        k = FusedGatherKernel(q19, 0.8)
        k.step(_initial_state(q19, (4, 4, 4)))
        out = k.step(_initial_state(q19, (5, 4, 3)))
        assert out.shape == (19, 5, 4, 3)

    def test_kernels_conserve_mass(self, q39):
        f = _initial_state(q39, (4, 4, 4))
        m0 = f.sum()
        out = RollKernel(q39, 0.8).step(f.copy())
        assert out.sum() == pytest.approx(m0, rel=1e-13)
