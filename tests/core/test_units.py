"""Tests for units and dimensionless groups."""

import math

import pytest

from repro.core import (
    FlowRegime,
    LatticeUnits,
    classify_regime,
    knudsen_number,
    mach_number,
    mean_free_path,
    reynolds_number,
    tau_for_knudsen,
)


class TestRegimes:
    def test_continuum(self):
        assert classify_regime(0.0) is FlowRegime.CONTINUUM
        assert classify_regime(1e-4) is FlowRegime.CONTINUUM

    def test_slip(self):
        assert classify_regime(0.05) is FlowRegime.SLIP

    def test_paper_boundary_at_0_1(self):
        # "flows with Knudsen numbers between 0 and 0.1"
        assert classify_regime(0.1) is FlowRegime.SLIP
        assert classify_regime(0.11) is FlowRegime.TRANSITION

    def test_transition_and_free_molecular(self):
        assert classify_regime(1.0) is FlowRegime.TRANSITION
        assert classify_regime(50.0) is FlowRegime.FREE_MOLECULAR

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            classify_regime(-0.1)


class TestDimensionless:
    def test_mach(self):
        assert mach_number(0.1, 1 / 3) == pytest.approx(0.1 * math.sqrt(3))

    def test_reynolds(self):
        assert reynolds_number(0.05, 100, 0.1) == pytest.approx(50.0)

    def test_mean_free_path_positive(self):
        assert mean_free_path(0.1, 1 / 3) > 0

    def test_kn_tau_roundtrip(self):
        for kn in (0.01, 0.1, 1.0):
            tau = tau_for_knudsen(kn, length=32, cs2=2 / 3)
            assert knudsen_number(tau, 32, 2 / 3) == pytest.approx(kn)

    def test_tau_half_is_zero_kn(self):
        assert knudsen_number(0.5, 10, 1 / 3) == 0.0

    def test_higher_kn_needs_larger_tau(self):
        taus = [tau_for_knudsen(kn, 16, 2 / 3) for kn in (0.01, 0.1, 1.0)]
        assert taus == sorted(taus)
        assert taus[0] > 0.5


class TestLatticeUnits:
    def test_validation(self):
        with pytest.raises(ValueError):
            LatticeUnits(dx=0.0, dt=1.0)

    def test_velocity_roundtrip(self):
        units = LatticeUnits(dx=1e-6, dt=1e-8)
        assert units.to_lattice_velocity(
            units.to_physical_velocity(0.05)
        ) == pytest.approx(0.05)

    def test_viscosity_scale(self):
        units = LatticeUnits(dx=2.0, dt=0.5)
        assert units.viscosity_scale == pytest.approx(8.0)

    def test_physical_time(self):
        units = LatticeUnits(dx=1.0, dt=0.25)
        assert units.to_physical_time(100) == pytest.approx(25.0)

    def test_density(self):
        units = LatticeUnits(dx=1.0, dt=1.0, rho0=1060.0)  # blood
        assert units.to_physical_density(1.02) == pytest.approx(1081.2)
