"""Tests for the distribution-field container."""

import numpy as np
import pytest

from repro.core import DistributionField, uniform_flow
from repro.errors import LatticeError


class TestConstruction:
    def test_zeros(self, q19):
        field = DistributionField.zeros(q19, (4, 5, 6))
        assert field.data.shape == (19, 4, 5, 6)
        assert field.num_cells == 120

    def test_layout_is_velocity_major_contiguous(self, q39):
        """The paper's collision-optimized layout: C-contiguous with the
        velocity index outermost."""
        field = DistributionField.zeros(q39, (4, 4, 4))
        assert field.data.flags["C_CONTIGUOUS"]
        assert field.data.strides[0] == max(field.data.strides)

    def test_from_equilibrium(self, q19):
        rho, u = uniform_flow((3, 3, 3), velocity=(0.01, 0, 0))
        field = DistributionField.from_equilibrium(q19, rho, u)
        assert field.data.sum() == pytest.approx(27.0)

    def test_bad_shape_rejected(self, q19):
        with pytest.raises(LatticeError):
            DistributionField.zeros(q19, (4, 4))
        with pytest.raises(LatticeError):
            DistributionField.zeros(q19, (4, 4, 0))

    def test_wrong_q_rejected(self, q19):
        with pytest.raises(LatticeError, match="Q"):
            DistributionField(q19, np.zeros((20, 3, 3, 3)))

    def test_nbytes(self, q19):
        field = DistributionField.zeros(q19, (10, 10, 10))
        assert field.nbytes == 19 * 1000 * 8


class TestOperations:
    def test_copy_is_deep(self, q19):
        a = DistributionField.zeros(q19, (3, 3, 3))
        b = a.copy()
        b[0, 0, 0, 0] = 1.0
        assert a[0, 0, 0, 0] == 0.0

    def test_allclose_same_lattice(self, q19):
        a = DistributionField.zeros(q19, (3, 3, 3))
        b = a.copy()
        assert a.allclose(b)

    def test_allclose_rejects_cross_lattice(self, q19, q39):
        a = DistributionField.zeros(q19, (3, 3, 3))
        b = DistributionField.zeros(q39, (3, 3, 3))
        with pytest.raises(LatticeError):
            a.allclose(b)

    def test_is_finite(self, q19):
        a = DistributionField.zeros(q19, (3, 3, 3))
        assert a.is_finite()
        a[0, 0, 0, 0] = np.nan
        assert not a.is_finite()

    def test_indexing_passthrough(self, q19):
        a = DistributionField.zeros(q19, (3, 3, 3))
        a[2] = 5.0
        assert (a[2] == 5.0).all()
