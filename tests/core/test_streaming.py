"""Tests for periodic and padded streaming."""

import numpy as np
import pytest

from repro.core import stream_padded, stream_periodic


class TestPeriodicStreaming:
    def test_push_convention(self, q19):
        """A population at x moves to x + c (with wraparound)."""
        f = np.zeros((19, 4, 4, 4))
        # find velocity (1, 0, 0)
        i = int(np.flatnonzero((q19.velocities == [1, 0, 0]).all(axis=1))[0])
        f[i, 0, 0, 0] = 1.0
        out = stream_periodic(q19, f)
        assert out[i, 1, 0, 0] == 1.0
        assert out[i].sum() == 1.0

    def test_wraparound(self, q19):
        f = np.zeros((19, 3, 3, 3))
        i = int(np.flatnonzero((q19.velocities == [-1, 0, 0]).all(axis=1))[0])
        f[i, 0, 1, 1] = 1.0
        out = stream_periodic(q19, f)
        assert out[i, 2, 1, 1] == 1.0

    def test_d3q39_three_plane_hop(self, q39):
        f = np.zeros((39, 7, 3, 3))
        i = int(np.flatnonzero((q39.velocities == [3, 0, 0]).all(axis=1))[0])
        f[i, 1, 0, 0] = 1.0
        out = stream_periodic(q39, f)
        assert out[i, 4, 0, 0] == 1.0

    def test_rest_population_stays(self, paper_lattice):
        lat = paper_lattice
        f = np.random.default_rng(0).random((lat.q, 4, 4, 4))
        out = stream_periodic(lat, f)
        assert np.array_equal(out[lat.rest_index], f[lat.rest_index])

    def test_mass_conserved_per_velocity(self, paper_lattice, rng):
        lat = paper_lattice
        f = rng.random((lat.q, 5, 4, 3))
        out = stream_periodic(lat, f)
        assert np.allclose(out.sum(axis=(1, 2, 3)), f.sum(axis=(1, 2, 3)))

    def test_streaming_is_permutation(self, q19, rng):
        """Streaming rearranges values without changing them."""
        f = rng.random((19, 4, 4, 4))
        out = stream_periodic(q19, f)
        for i in range(19):
            assert np.allclose(np.sort(out[i].ravel()), np.sort(f[i].ravel()))

    def test_inverse_streaming(self, paper_lattice, rng):
        """Streaming then streaming each opposite velocity undoes it."""
        lat = paper_lattice
        f = rng.random((lat.q, 5, 5, 5))
        once = stream_periodic(lat, f)
        # stream the opposite lattice: swap populations to opposite dirs
        twice = stream_periodic(lat, once[lat.opposite])[lat.opposite]
        assert np.allclose(twice, f)

    def test_in_place_rejected(self, q19):
        f = np.zeros((19, 3, 3, 3))
        with pytest.raises(ValueError, match="in place"):
            stream_periodic(q19, f, out=f)


class TestPaddedStreaming:
    def test_matches_periodic_in_deep_interior(self, paper_lattice, rng):
        lat = paper_lattice
        k = lat.max_displacement
        f = rng.random((lat.q, 8 + 2 * k, 4, 4))
        periodic = stream_periodic(lat, f)
        padded = stream_padded(lat, f)
        interior = slice(k, -k)
        # y/z wrap identically; only x differs near edges
        assert np.allclose(padded[:, interior], periodic[:, interior])

    def test_edge_fill_is_nan(self, q19, rng):
        f = rng.random((19, 6, 3, 3))
        out = stream_padded(q19, f)
        i = int(np.flatnonzero((q19.velocities == [1, 0, 0]).all(axis=1))[0])
        assert np.isnan(out[i, 0]).all()

    def test_custom_fill_value(self, q19, rng):
        f = rng.random((19, 6, 3, 3))
        out = stream_padded(q19, f, fill_value=-7.0)
        i = int(np.flatnonzero((q19.velocities == [1, 0, 0]).all(axis=1))[0])
        assert (out[i, 0] == -7.0).all()

    def test_yz_periodicity_preserved(self, q19):
        """y and z axes must wrap (they are not decomposed)."""
        f = np.zeros((19, 5, 3, 3))
        i = int(np.flatnonzero((q19.velocities == [0, -1, 0]).all(axis=1))[0])
        f[i, 2, 0, 1] = 1.0
        out = stream_padded(q19, f)
        assert out[i, 2, 2, 1] == 1.0

    def test_d3q39_fills_three_planes(self, q39, rng):
        f = rng.random((39, 10, 3, 3))
        out = stream_padded(q39, f)
        i = int(np.flatnonzero((q39.velocities == [3, 0, 0]).all(axis=1))[0])
        assert np.isnan(out[i, :3]).all()
        assert not np.isnan(out[i, 3:]).any()

    def test_in_place_rejected(self, q19):
        f = np.zeros((19, 4, 3, 3))
        with pytest.raises(ValueError, match="in place"):
            stream_padded(q19, f, out=f)
