"""Tests for the space-major layout kernel."""

import numpy as np
import pytest

from repro.core import RollKernel, SpaceMajorKernel, equilibrium
from repro.lattice import get_lattice


def _state(lattice, shape=(5, 4, 3), seed=2):
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.02 * rng.standard_normal(shape)
    u = 0.02 * rng.standard_normal((3, *shape))
    return equilibrium(lattice, rho, u) + 1e-4 * rng.standard_normal(
        (lattice.q, *shape)
    )


class TestSpaceMajorKernel:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_matches_velocity_major(self, lname):
        lat = get_lattice(lname)
        f = _state(lat)
        a = RollKernel(lat, tau=0.8).step(f.copy())
        b = SpaceMajorKernel(lat, tau=0.8).step(f.copy())
        assert np.allclose(a, b, atol=1e-13)

    def test_native_layout_roundtrip(self, q19):
        f = _state(q19)
        kernel = SpaceMajorKernel(q19, tau=0.9)
        f_sm = np.ascontiguousarray(np.moveaxis(f, 0, -1))
        native = kernel.step_native(f_sm)
        via_api = kernel.step(f.copy())
        assert np.allclose(np.moveaxis(native, -1, 0), via_api, atol=1e-14)

    def test_multi_step(self, q39):
        lat = q39
        f = _state(lat, shape=(4, 4, 4))
        a, b = f.copy(), f.copy()
        k1, k2 = RollKernel(lat, 0.7), SpaceMajorKernel(lat, 0.7)
        for _ in range(4):
            a = k1.step(a)
            b = k2.step(b)
        assert np.allclose(a, b, atol=1e-12)

    def test_mass_conserved(self, q19):
        f = _state(q19)
        out = SpaceMajorKernel(q19, 0.8).step(f.copy())
        assert out.sum() == pytest.approx(f.sum(), rel=1e-13)


class TestFieldLayouts:
    """The layout axis on DistributionField and the planned kernel."""

    def test_resolve_layout(self):
        from repro.core import LAYOUT_AOS, LAYOUT_SOA, resolve_layout
        from repro.errors import LatticeError

        assert resolve_layout(None) == LAYOUT_SOA
        assert resolve_layout("soa") == LAYOUT_SOA
        assert resolve_layout("aos") == LAYOUT_AOS
        with pytest.raises(LatticeError, match="unsupported field layout"):
            resolve_layout("csoa")

    def test_aos_field_is_cell_major(self, q19):
        from repro.core import DistributionField

        field = DistributionField.zeros(q19, (5, 4, 3), layout="aos")
        # Logical shape stays (Q, *shape); the underlying buffer is
        # cell-major, so the moveaxis view is the contiguous one.
        assert field.data.shape == (q19.q, 5, 4, 3)
        assert np.moveaxis(field.data, 0, -1).flags.c_contiguous
        assert not field.data.flags.c_contiguous

    def test_as_soa_copies_contiguously(self, q19, rng):
        from repro.core import DistributionField

        data = rng.random((q19.q, 4, 4, 3))
        field = DistributionField(q19, data.copy(), layout="aos")
        soa = field.as_soa()
        assert soa.flags.c_contiguous
        assert np.array_equal(soa, field.data)

    def test_copy_and_astype_preserve_layout(self, q19):
        from repro.core import DistributionField

        field = DistributionField.zeros(q19, (4, 4, 3), layout="aos")
        assert field.copy().layout == "aos"
        assert field.astype("float32").layout == "aos"


class TestSimulationLayoutEquivalence:
    """soa and aos runs must be byte-identical per dtype: every layout
    transform is an exact permutation and the collision arithmetic is
    shared, so not even the last bit may differ."""

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_byte_identical_plain(self, dtype):
        from repro.core import Simulation, shear_wave

        shape = (8, 6, 5)
        rho, u = shear_wave(shape, amplitude=1e-3)
        runs = {}
        for layout in ("soa", "aos"):
            sim = Simulation(
                "D3Q19", shape, tau=0.8, kernel="planned",
                dtype=dtype, layout=layout,
            )
            sim.initialize(rho, u)
            sim.run(8)
            runs[layout] = sim.f
        assert np.array_equal(runs["soa"], runs["aos"])

    def test_byte_identical_with_walls_and_forcing(self):
        from repro.core import BounceBackWalls, GuoForcing, Simulation
        from repro.lattice import get_lattice

        lat = get_lattice("D3Q19")
        shape = (8, 7, 5)
        mask = np.zeros(shape, dtype=bool)
        mask[:, 0, :] = mask[:, -1, :] = True
        runs = {}
        for layout in ("soa", "aos"):
            sim = Simulation(
                lat, shape, tau=0.9, kernel="planned", layout=layout,
                boundaries=[BounceBackWalls(lat, mask)],
                forcing=GuoForcing(lat, (1e-6, 0.0, 0.0)),
            )
            sim.initialize(1.0, np.zeros((3, *shape)))
            sim.run(10)
            runs[layout] = sim.f
        assert np.array_equal(runs["soa"], runs["aos"])

    def test_aos_requires_planned_kernel(self):
        from repro.core import Simulation
        from repro.errors import LatticeError

        with pytest.raises(LatticeError, match="requires a kernel"):
            Simulation("D3Q19", (6, 5, 4), layout="aos")
        with pytest.raises(LatticeError, match="planned"):
            Simulation("D3Q19", (6, 5, 4), kernel="roll", layout="aos")

    def test_aos_auto_resolves_to_planned(self):
        from repro.core import Simulation

        sim = Simulation("D3Q19", (6, 5, 4), kernel="auto", layout="aos")
        assert sim.kernel.name == "planned"

    def test_aos_planned_step_is_zero_allocation(self):
        import tracemalloc

        from repro.core import Simulation, shear_wave

        shape = (16, 16, 16)
        rho, u = shear_wave(shape, amplitude=1e-3)
        sim = Simulation("D3Q19", shape, tau=0.8, kernel="planned", layout="aos")
        sim.initialize(rho, u)
        sim.run(3)
        tracemalloc.start()
        for _ in range(5):
            sim.step()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < sim.field.data.nbytes // 50
