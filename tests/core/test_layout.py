"""Tests for the space-major layout kernel."""

import numpy as np
import pytest

from repro.core import RollKernel, SpaceMajorKernel, equilibrium
from repro.lattice import get_lattice


def _state(lattice, shape=(5, 4, 3), seed=2):
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.02 * rng.standard_normal(shape)
    u = 0.02 * rng.standard_normal((3, *shape))
    return equilibrium(lattice, rho, u) + 1e-4 * rng.standard_normal(
        (lattice.q, *shape)
    )


class TestSpaceMajorKernel:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_matches_velocity_major(self, lname):
        lat = get_lattice(lname)
        f = _state(lat)
        a = RollKernel(lat, tau=0.8).step(f.copy())
        b = SpaceMajorKernel(lat, tau=0.8).step(f.copy())
        assert np.allclose(a, b, atol=1e-13)

    def test_native_layout_roundtrip(self, q19):
        f = _state(q19)
        kernel = SpaceMajorKernel(q19, tau=0.9)
        f_sm = np.ascontiguousarray(np.moveaxis(f, 0, -1))
        native = kernel.step_native(f_sm)
        via_api = kernel.step(f.copy())
        assert np.allclose(np.moveaxis(native, -1, 0), via_api, atol=1e-14)

    def test_multi_step(self, q39):
        lat = q39
        f = _state(lat, shape=(4, 4, 4))
        a, b = f.copy(), f.copy()
        k1, k2 = RollKernel(lat, 0.7), SpaceMajorKernel(lat, 0.7)
        for _ in range(4):
            a = k1.step(a)
            b = k2.step(b)
        assert np.allclose(a, b, atol=1e-12)

    def test_mass_conserved(self, q19):
        f = _state(q19)
        out = SpaceMajorKernel(q19, 0.8).step(f.copy())
        assert out.sum() == pytest.approx(f.sum(), rel=1e-13)
