"""Tests for VTK output, checkpointing and time-series logging."""

import numpy as np
import pytest

from repro.core import (
    Simulation,
    TimeSeriesLogger,
    kinetic_energy,
    load_checkpoint,
    save_checkpoint,
    shear_wave,
    total_mass,
    write_vtk,
)


@pytest.fixture
def sim():
    s = Simulation("D3Q19", (8, 6, 4), tau=0.8)
    rho, u = shear_wave((8, 6, 4), amplitude=1e-3)
    s.initialize(rho, u)
    s.run(5)
    return s


class TestVTK:
    def test_file_structure(self, sim, tmp_path):
        path = write_vtk(tmp_path / "out.vtk", sim)
        text = path.read_text()
        assert text.startswith("# vtk DataFile Version 3.0")
        assert "DIMENSIONS 8 6 4" in text
        assert "POINT_DATA 192" in text
        assert "SCALARS density" in text
        assert "VECTORS velocity" in text

    def test_density_values_roundtrip(self, sim, tmp_path):
        path = write_vtk(tmp_path / "out.vtk", sim, fields=("density",))
        lines = path.read_text().splitlines()
        start = lines.index("LOOKUP_TABLE default") + 1
        values = np.array([float(v) for v in lines[start : start + 192]])
        rho, _ = sim.macroscopic()
        assert values[0] == pytest.approx(rho[0, 0, 0])
        # VTK x-fastest ordering: second value is x=1
        assert values[1] == pytest.approx(rho[1, 0, 0])

    def test_unknown_field_rejected(self, sim, tmp_path):
        with pytest.raises(ValueError, match="unknown fields"):
            write_vtk(tmp_path / "x.vtk", sim, fields=("vorticity",))

    def test_speed_field(self, sim, tmp_path):
        path = write_vtk(tmp_path / "s.vtk", sim, fields=("speed",))
        assert "SCALARS speed" in path.read_text()


class TestCheckpoint:
    def test_roundtrip_bit_exact(self, sim, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, sim)
        restored = load_checkpoint(path)
        assert np.array_equal(restored.f, sim.f)
        assert restored.time_step == sim.time_step
        assert restored.lattice.name == "D3Q19"

    def test_restart_continues_identically(self, sim, tmp_path):
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, sim)
        sim.run(10)
        restored = load_checkpoint(path)
        restored.run(10)
        assert np.allclose(restored.f, sim.f, atol=1e-15)

    def test_extra_metadata_roundtrip(self, sim, tmp_path):
        from repro.core import load_checkpoint_data

        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, sim, extra={"case": "taylor-green", "half": 0.5})
        data = load_checkpoint_data(path)
        assert data.extra == {"case": "taylor-green", "half": 0.5}
        assert data.lattice == "D3Q19"
        assert data.tau == pytest.approx(0.8)
        assert data.time_step == sim.time_step
        assert np.array_equal(data.f, sim.f)

    def test_extra_defaults_to_empty(self, sim, tmp_path):
        from repro.core import load_checkpoint_data

        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, sim)
        assert load_checkpoint_data(path).extra == {}

    def test_series_roundtrip_bit_exact(self, sim, tmp_path):
        from repro.core import load_checkpoint_data

        series = {"step": [0.0, 5.0], "mass": [1.0, 0.1 + 0.2]}
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, sim, series=series)
        restored = load_checkpoint_data(path).series
        assert restored == series
        assert restored["mass"][1] == 0.1 + 0.2  # exact bits, not approx

    def test_series_defaults_to_empty(self, sim, tmp_path):
        from repro.core import load_checkpoint_data

        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, sim)
        assert load_checkpoint_data(path).series == {}

    def test_mrt_checkpoint_uses_tau_shear(self, tmp_path):
        from repro.core import HermiteMRTCollision
        from repro.lattice import get_lattice

        lat = get_lattice("D3Q39")
        s = Simulation(lat, (6, 4, 4), collision=HermiteMRTCollision(lat, tau_shear=0.9))
        rho, u = shear_wave((6, 4, 4))
        s.initialize(rho, u)
        path = save_checkpoint(tmp_path / "m.npz", s)
        restored = load_checkpoint(path)
        assert restored.collision.tau == pytest.approx(0.9)


class TestTimeSeriesLogger:
    def test_logging_and_csv(self, tmp_path):
        s = Simulation("D3Q19", (8, 6, 4), tau=0.8)
        rho, u = shear_wave((8, 6, 4), amplitude=1e-3)
        s.initialize(rho, u)
        logger = TimeSeriesLogger(
            {
                "mass": lambda sim: total_mass(sim.f),
                "energy": lambda sim: kinetic_energy(sim.lattice, sim.f),
            }
        )
        s.run(20, monitor=logger, monitor_every=5)
        arr = logger.as_array()
        assert arr.shape == (4, 3)
        assert arr[:, 0].tolist() == [5, 10, 15, 20]
        # mass constant, energy decays
        assert np.allclose(arr[:, 1], arr[0, 1], rtol=1e-12)
        assert arr[-1, 2] < arr[0, 2]

        path = logger.write(tmp_path / "series.csv")
        lines = path.read_text().splitlines()
        assert lines[0] == "step,mass,energy"
        assert len(lines) == 5

    def test_empty_logger(self):
        logger = TimeSeriesLogger({"x": lambda s: 0.0})
        assert logger.as_array().shape == (0, 2)


class TestCanonicalSerialization:
    def test_canonical_json_is_insertion_order_independent(self):
        from repro.core import canonical_json

        assert canonical_json({"b": 1, "a": [1, 2]}) == canonical_json(
            {"a": [1, 2], "b": 1}
        )
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_jsonable_converts_numpy_and_tuples(self):
        from repro.core import jsonable

        value = {"a": np.float64(0.5), "b": (np.int64(3), [np.bool_(True)])}
        assert jsonable(value) == {"a": 0.5, "b": [3, [True]]}

    def test_jsonable_rejects_unserialisable(self):
        from repro.core import jsonable

        with pytest.raises(TypeError, match="cannot serialise"):
            jsonable(object())

    def test_result_data_roundtrip_bit_exact(self):
        from repro.core import deserialize_result_data, serialize_result_data

        metrics = {"steps_run": 10, "err": 0.1 + 0.2, "tiny": 4.9e-324}
        series = {"step": [0.0, 5.0], "ke": [np.float64(1e-17), 2.0]}
        checks = {"ok": True}
        text = serialize_result_data(metrics, series, checks)
        m, s, c = deserialize_result_data(text)
        assert m["steps_run"] == 10 and isinstance(m["steps_run"], int)
        assert m["err"] == 0.1 + 0.2  # exact float bits survive
        assert m["tiny"] == 4.9e-324  # denormal min survives
        assert s == {"step": [0.0, 5.0], "ke": [1e-17, 2.0]}
        assert c == {"ok": True}

    def test_serialization_is_canonical_text(self):
        from repro.core import serialize_result_data

        a = serialize_result_data({"x": 1, "y": 2}, {"step": [0.0]}, {})
        b = serialize_result_data({"y": 2, "x": 1}, {"step": [0.0]}, {})
        assert a == b
