"""Tests for the analytic initial conditions."""

import numpy as np
import pytest

from repro.core import (
    density_pulse,
    random_perturbation,
    shear_wave,
    taylor_green,
    uniform_flow,
)


class TestShapes:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: uniform_flow(s),
            lambda s: shear_wave(s),
            lambda s: random_perturbation(s),
            lambda s: density_pulse(s),
        ],
    )
    def test_shapes(self, factory):
        shape = (8, 6, 4)
        rho, u = factory(shape)
        assert rho.shape == shape
        assert u.shape == (3, *shape)


class TestShearWave:
    def test_transverse(self):
        rho, u = shear_wave((16, 4, 4), amplitude=1e-3, vary_axis=0, flow_axis=1)
        assert np.abs(u[0]).max() == 0.0
        assert np.abs(u[1]).max() == pytest.approx(1e-3, rel=1e-3)

    def test_longitudinal_rejected(self):
        with pytest.raises(ValueError, match="transverse"):
            shear_wave((8, 8, 8), vary_axis=0, flow_axis=0)

    def test_zero_mean(self):
        _, u = shear_wave((32, 4, 4))
        assert abs(u[1].mean()) < 1e-15

    def test_wavenumber(self):
        _, u = shear_wave((32, 4, 4), wavenumber=2, amplitude=1.0)
        # two full periods: u(x) = u(x + 16)
        assert np.allclose(u[1][:16], u[1][16:])


class TestTaylorGreen:
    def test_divergence_free(self):
        _, u = taylor_green((32, 32, 4), u0=1.0)
        dux = (np.roll(u[0], -1, 0) - np.roll(u[0], 1, 0)) / 2
        duy = (np.roll(u[1], -1, 1) - np.roll(u[1], 1, 1)) / 2
        assert np.abs(dux + duy).max() < 1e-12

    def test_z_invariant(self):
        _, u = taylor_green((16, 16, 8))
        assert np.allclose(u[:, :, :, 0], u[:, :, :, 5])


class TestOthers:
    def test_random_is_deterministic(self):
        _, u1 = random_perturbation((4, 4, 4), seed=3)
        _, u2 = random_perturbation((4, 4, 4), seed=3)
        assert np.array_equal(u1, u2)

    def test_density_pulse_peak_at_centre(self):
        rho, u = density_pulse((16, 16, 16), amplitude=1e-3)
        assert rho.argmax() == np.ravel_multi_index((8, 8, 8), (16, 16, 16))
        assert np.abs(u).max() == 0.0

    def test_uniform_flow_values(self):
        rho, u = uniform_flow((3, 3, 3), velocity=(0.1, 0.2, 0.3), rho0=2.0)
        assert (rho == 2.0).all()
        assert (u[2] == 0.3).all()
