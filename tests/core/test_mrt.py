"""Tests for the Hermite-space MRT collision operator."""

import numpy as np
import pytest

from repro.core import (
    HermiteMRTCollision,
    RegularizedBGKCollision,
    Simulation,
    equilibrium,
    macroscopic,
    shear_wave,
)
from repro.errors import LatticeError


class TestValidation:
    def test_tau_shear(self, q19):
        with pytest.raises(LatticeError, match="tau_shear"):
            HermiteMRTCollision(q19, tau_shear=0.5)

    def test_tau_bulk(self, q19):
        with pytest.raises(LatticeError, match="tau_bulk"):
            HermiteMRTCollision(q19, tau_shear=0.8, tau_bulk=0.4)

    def test_tau_third(self, q39):
        with pytest.raises(LatticeError, match="tau_third"):
            HermiteMRTCollision(q39, tau_shear=0.8, tau_third=0.3)

    def test_defaults(self, q39):
        op = HermiteMRTCollision(q39, tau_shear=0.8)
        assert op.tau_bulk == 0.8
        assert op.tau_third == 1.0


class TestPhysics:
    def test_reduces_to_regularized_at_equal_rates(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape)
        f = equilibrium(lat, rho, u)
        f += 1e-4 * np.random.default_rng(5).standard_normal(f.shape)
        mrt = HermiteMRTCollision(lat, tau_shear=0.8, tau_bulk=0.8, tau_third=0.8)
        reg = RegularizedBGKCollision(lat, tau=0.8)
        assert np.allclose(mrt.apply(f.copy()), reg.apply(f.copy()), atol=1e-13)

    def test_conserves_mass_and_momentum(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape)
        f = equilibrium(lat, rho, u)
        f += 1e-4 * np.random.default_rng(6).standard_normal(f.shape)
        rho0, u0 = macroscopic(lat, f)
        op = HermiteMRTCollision(lat, tau_shear=0.7, tau_bulk=1.4, tau_third=0.9)
        out = op.apply(f.copy())
        rho1, u1 = macroscopic(lat, out)
        assert np.allclose(rho1, rho0, atol=1e-12)
        assert np.allclose(rho1[None] * u1, rho0[None] * u0, atol=1e-12)

    def test_equilibrium_fixed_point(self, q39, make_random_state, small_shape):
        rho, u = make_random_state(q39, small_shape)
        feq = equilibrium(q39, rho, u)
        op = HermiteMRTCollision(q39, tau_shear=0.9, tau_bulk=2.0)
        assert np.allclose(op.apply(feq.copy()), feq, atol=1e-12)

    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_shear_viscosity_set_by_tau_shear_only(self, lname):
        """Changing bulk/third rates must not move the shear viscosity."""
        shape = (32, 6, 6)
        amps = []
        for tau_bulk, tau_third in ((0.8, 1.0), (1.6, 0.8)):
            sim = Simulation(
                lname,
                shape,
                collision=HermiteMRTCollision(
                    __import__("repro.lattice", fromlist=["get_lattice"]).get_lattice(lname),
                    tau_shear=0.8,
                    tau_bulk=tau_bulk,
                    tau_third=tau_third,
                ),
            )
            rho, u = shear_wave(shape, amplitude=1e-4)
            sim.initialize(rho, u)
            sim.run(120)
            _, uu = macroscopic(sim.lattice, sim.f)
            amps.append(np.abs(uu[1]).max())
        nu = sim.lattice.cs2_float * 0.3
        k = 2 * np.pi / 32
        expected = 1e-4 * np.exp(-nu * k * k * 120)
        for amp in amps:
            assert amp == pytest.approx(expected, rel=0.02)

    def test_bulk_viscosity_property(self, q19):
        op = HermiteMRTCollision(q19, tau_shear=0.8, tau_bulk=1.1)
        assert op.bulk_viscosity == pytest.approx((2 / 3) * (1 / 3) * 0.6)
        assert op.viscosity == pytest.approx((1 / 3) * 0.3)

    def test_higher_bulk_tau_damps_sound_faster(self, q19):
        """Larger tau_bulk = larger bulk viscosity = stronger damping of
        acoustic (density) disturbances, with shear physics untouched."""
        import numpy as np
        from repro.core import density_pulse

        shape = (32, 4, 4)
        residuals = []
        for tau_bulk in (0.6, 2.5):
            sim = Simulation(
                q19,
                shape,
                collision=HermiteMRTCollision(q19, tau_shear=0.6, tau_bulk=tau_bulk),
            )
            rho, u = density_pulse(shape, amplitude=1e-3)
            sim.initialize(rho, u)
            sim.run(150)
            rho_out, _ = macroscopic(q19, sim.f)
            residuals.append(float(np.abs(rho_out - rho_out.mean()).max()))
        assert residuals[1] < 0.5 * residuals[0]
