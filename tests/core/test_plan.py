"""Planned kernel: zero-allocation property, equivalence, selection."""

import tracemalloc

import numpy as np
import pytest

from repro.core import (
    AUTO_KERNEL,
    BounceBackWalls,
    FusedGatherKernel,
    KernelPlan,
    NaiveKernel,
    PlannedKernel,
    RollKernel,
    Simulation,
    auto_select_kernel,
    available_kernels,
    equilibrium,
    make_kernel,
    stream_periodic,
)
from repro.core.plan import AUTO_CANDIDATES, build_gather_table
from repro.errors import LatticeError
from repro.lattice import get_lattice

#: Every (lattice, order) combination any kernel must support: orders up
#: to each lattice's native equilibrium order.
LATTICE_ORDERS = [
    (lname, order)
    for lname in ("D3Q15", "D3Q19", "D3Q27", "D3Q39")
    for order in range(1, get_lattice(lname).equilibrium_order + 1)
]

FAST_KERNELS = (RollKernel, FusedGatherKernel, PlannedKernel)


def _initial_state(lattice, shape, seed=7, dtype=np.float64):
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.02 * rng.standard_normal(shape)
    u = 0.02 * rng.standard_normal((3, *shape))
    f = equilibrium(lattice, rho, u) + 1e-4 * rng.standard_normal(
        (lattice.q, *shape)
    )
    return np.ascontiguousarray(f, dtype=dtype)


class TestGatherTable:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_matches_roll_streaming(self, lname):
        lat = get_lattice(lname)
        shape = (5, 4, 3)
        f = _initial_state(lat, shape)
        expected = stream_periodic(lat, f)
        table = build_gather_table(lat, shape)
        got = np.take(f.reshape(-1), table).reshape(f.shape)
        assert np.array_equal(got, expected)

    def test_table_is_a_permutation(self, q39):
        table = build_gather_table(q39, (4, 3, 5))
        assert np.array_equal(np.sort(table), np.arange(table.size))


class TestPlannedEquivalence:
    @pytest.mark.parametrize("lname,order", LATTICE_ORDERS)
    @pytest.mark.parametrize("kernel_cls", FAST_KERNELS)
    def test_every_kernel_matches_naive(self, lname, order, kernel_cls):
        """Each fast kernel reproduces the literal Fig. 3/4 pseudocode on
        every lattice at every supported expansion order."""
        lat = get_lattice(lname)
        shape = (4, 3, 3)
        f = _initial_state(lat, shape)
        ref = NaiveKernel(lat, tau=0.8, order=order).step(f.copy())
        got = kernel_cls(lat, tau=0.8, order=order).step(f.copy())
        assert np.allclose(got, ref, atol=1e-13)

    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_float32_matches_float64_within_eps(self, lname):
        """Single precision tracks double to O(sqrt(N) * eps32)."""
        lat = get_lattice(lname)
        shape = (5, 4, 3)
        f64 = _initial_state(lat, shape)
        ref = PlannedKernel(lat, tau=0.8).step(f64.copy())
        got = PlannedKernel(lat, tau=0.8, dtype="float32").step(
            f64.astype(np.float32)
        )
        assert got.dtype == np.float32
        assert np.allclose(got, ref, atol=1e-5)

    def test_multi_step_equivalence(self, q39):
        shape = (4, 4, 4)
        f = _initial_state(q39, shape)
        a, b = f.copy(), f.copy()
        roll, planned = RollKernel(q39, 0.7), PlannedKernel(q39, 0.7)
        for _ in range(5):
            a = roll.step(a)
            b = planned.step(b)
        assert np.allclose(a, b, atol=1e-12)

    def test_plan_rebuilt_on_shape_change(self, q19):
        k = PlannedKernel(q19, 0.8)
        k.step(_initial_state(q19, (4, 4, 4)))
        out = k.step(_initial_state(q19, (5, 4, 3)))
        assert out.shape == (19, 5, 4, 3)

    def test_dtype_mismatch_rejected(self, q19):
        k = PlannedKernel(q19, 0.8, dtype="float32")
        with pytest.raises(LatticeError, match="float32"):
            k.step(_initial_state(q19, (4, 4, 4)))

    def test_strided_view_rejected(self, q19):
        """reshape(-1) on a strided view would silently write into a
        throwaway copy — the kernel must refuse instead."""
        k = PlannedKernel(q19, 0.8)
        f = _initial_state(q19, (4, 4, 8))
        with pytest.raises(LatticeError, match="contiguous"):
            k.step(f[:, :, :, ::2])
        with pytest.raises(LatticeError, match="contiguous"):
            k.stream(f[:, :, :, ::2], out=np.empty_like(f[:, :, :, ::2]))

    def test_split_stream_collide_matches_fused(self, q19):
        """The split API (what Simulation drives) equals the fused step."""
        shape = (5, 4, 3)
        f = _initial_state(q19, shape)
        fused = PlannedKernel(q19, 0.8).step(f.copy())
        k = PlannedKernel(q19, 0.8)
        adv = np.empty_like(f)
        k.stream(f.copy(), out=adv)
        split = k.collide(adv, out=adv)
        assert np.array_equal(split, fused)


class TestZeroAllocation:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_step_allocates_nothing_after_warmup(self, q39, dtype):
        """The acceptance property: after the first (plan-building) step,
        PlannedKernel.step makes zero heap allocations — numpy data
        allocations are tracemalloc-traced, so a single hidden
        full-lattice temporary would blow the budget by ~3 orders of
        magnitude."""
        shape = (16, 16, 16)
        f = _initial_state(q39, shape, dtype=np.dtype(dtype))
        kernel = PlannedKernel(q39, tau=0.8, dtype=dtype)
        f = kernel.step(f)  # warmup: builds plan + arena
        tracemalloc.start()
        for _ in range(5):
            f = kernel.step(f)
        current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # A few transient view objects per step are unavoidable; a field
        # copy would be f.nbytes (~1.3 MB at float32, 2.6 MB at float64).
        assert peak < f.nbytes // 50, f"peak {peak} B vs field {f.nbytes} B"
        assert current < 64 * 1024
        assert np.isfinite(f).all()

    def test_roll_kernel_still_allocates(self, q19):
        """Contrast case documenting *why* the planned kernel exists:
        the roll kernel's collide allocates full-lattice temporaries."""
        shape = (16, 16, 16)
        f = _initial_state(q19, shape)
        kernel = RollKernel(q19, tau=0.8)
        f = kernel.step(f)
        tracemalloc.start()
        f = kernel.step(f)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak > f.nbytes // 4


class TestSelection:
    def test_registry_names(self):
        assert set(available_kernels()) == {
            "naive",
            "roll",
            "fused-gather",
            "planned",
            "sparse-legacy",
            "sparse-planned",
        }

    def test_make_kernel_by_name(self, q19):
        for name in available_kernels():
            if name.startswith("sparse-"):
                # sparse kernels stream a SparseDomain: constructible
                # only through make_sparse_kernel / make_kernel(domain=)
                with pytest.raises(LatticeError, match="SparseDomain"):
                    make_kernel(name, q19, tau=0.8)
                continue
            kernel = make_kernel(name, q19, tau=0.8)
            assert kernel.name == name

    def test_make_kernel_passthrough_instance(self, q19):
        kernel = RollKernel(q19, 0.8)
        assert make_kernel(kernel, q19, tau=0.9) is kernel

    def test_make_kernel_unknown_name(self, q19):
        with pytest.raises(LatticeError, match="unknown kernel"):
            make_kernel("simd", q19, tau=0.8)

    def test_auto_requires_shape(self, q19):
        with pytest.raises(LatticeError, match="shape"):
            make_kernel(AUTO_KERNEL, q19, tau=0.8)

    def test_auto_select_picks_fastest(self, q19):
        """With an injected clock, selection is a pure argmin."""
        fake_times = iter(range(100))

        def clock():
            return float(next(fake_times))

        # Each candidate's (start, stop) reads advance the fake clock by
        # the same amount, so the tie-break picks the first name in
        # sorted order among equals -> deterministic.  cache=False keeps
        # this a pure argmin (no verdict read or written).
        kernel = auto_select_kernel(
            q19, (4, 4, 4), tau=0.8, clock=clock, warmup=1, trials=1, cache=False
        )
        assert kernel.name in AUTO_CANDIDATES
        assert set(kernel.auto_timings) == set(AUTO_CANDIDATES)

    def test_auto_select_real_timing_smoke(self, q19):
        kernel = auto_select_kernel(q19, (8, 8, 8), tau=0.8)
        assert all(t > 0 for t in kernel.auto_timings.values())


class TestSimulationPlumbing:
    def _init(self, sim, seed=3):
        rng = np.random.default_rng(seed)
        rho = np.ones(sim.shape)
        u = 0.01 * rng.standard_normal((3, *sim.shape))
        sim.initialize(rho, u)

    @pytest.mark.parametrize("kernel", ["roll", "fused-gather", "planned"])
    def test_kernel_matches_default_path(self, kernel):
        shape = (8, 8, 8)
        ref = Simulation("D3Q19", shape, tau=0.8)
        sim = Simulation("D3Q19", shape, tau=0.8, kernel=kernel)
        self._init(ref)
        self._init(sim)
        ref.run(5)
        sim.run(5)
        assert np.allclose(sim.f, ref.f, atol=1e-13)

    def test_naive_kernel_drives_simulation(self):
        """kernel='naive' really runs the literal per-cell loops through
        the split stream/collide path (the executable spec end-to-end)."""
        shape = (4, 3, 3)
        ref = Simulation("D3Q19", shape, tau=0.8)
        sim = Simulation("D3Q19", shape, tau=0.8, kernel="naive")
        self._init(ref)
        self._init(sim)
        ref.run(2)
        sim.run(2)
        assert np.allclose(sim.f, ref.f, atol=1e-13)

    @pytest.mark.parametrize("kernel_cls", [NaiveKernel, FusedGatherKernel])
    def test_split_api_overridden_not_inherited(self, kernel_cls, q19):
        """Each selectable kernel must supply its own split stream()
        (otherwise Simulation would silently run the roll fallback)."""
        from repro.core import LBMKernel

        assert kernel_cls.stream is not LBMKernel.stream
        shape = (4, 3, 3)
        f = _initial_state(q19, shape)
        kernel = kernel_cls(q19, 0.8)
        out = kernel.stream(f.copy(), out=np.empty_like(f))
        assert np.array_equal(out, stream_periodic(q19, f))

    def test_fused_gather_stream_honours_strided_out(self, q19):
        """A non-contiguous out must receive the streamed values (not a
        throwaway reshape copy)."""
        shape = (4, 3, 4)
        f = _initial_state(q19, shape)
        backing = np.full((q19.q, 4, 3, 8), -1.0)
        out = backing[:, :, :, ::2]
        FusedGatherKernel(q19, 0.8).stream(f, out=out)
        assert np.array_equal(out, stream_periodic(q19, f))

    def test_kernel_with_boundaries(self):
        """The split stream/collide path keeps kernels usable under
        boundary conditions (the fused step alone could not be)."""
        shape = (6, 9, 6)
        lat = get_lattice("D3Q19")
        solid = np.zeros(shape, dtype=bool)
        solid[:, 0, :] = solid[:, -1, :] = True

        def build(**kwargs):
            sim = Simulation(
                lat,
                shape,
                tau=0.9,
                boundaries=[BounceBackWalls(lat, solid)],
                **kwargs,
            )
            self._init(sim)
            sim.run(5)
            return sim

        ref = build()
        planned = build(kernel="planned")
        assert np.allclose(planned.f, ref.f, atol=1e-13)

    def test_kernel_with_forcing(self):
        shape = (6, 9, 6)
        from repro.core import GuoForcing

        lat = get_lattice("D3Q19")

        def build(**kwargs):
            sim = Simulation(
                lat,
                shape,
                tau=0.9,
                forcing=GuoForcing(lat, (1e-5, 0.0, 0.0)),
                **kwargs,
            )
            self._init(sim)
            sim.run(5)
            return sim

        ref = build()
        planned = build(kernel="planned")
        assert np.allclose(planned.f, ref.f, atol=1e-13)

    def test_kernel_and_collision_conflict(self):
        from repro.core import BGKCollision

        lat = get_lattice("D3Q19")
        with pytest.raises(LatticeError, match="mutually exclusive"):
            Simulation(
                lat,
                (4, 4, 4),
                kernel="planned",
                collision=BGKCollision(lat, 0.8),
            )

    def test_auto_kernel_runs(self):
        sim = Simulation("D3Q19", (6, 6, 6), tau=0.8, kernel="auto")
        assert sim.kernel is not None
        assert sim.kernel.name in AUTO_CANDIDATES
        self._init(sim)
        sim.run(3)
        assert np.isfinite(sim.f).all()

    def test_float32_simulation_tracks_float64(self):
        shape = (8, 8, 8)
        ref = Simulation("D3Q19", shape, tau=0.8, kernel="planned")
        sim = Simulation(
            "D3Q19", shape, tau=0.8, kernel="planned", dtype="float32"
        )
        self._init(ref)
        self._init(sim)
        assert sim.f.dtype == np.float32
        ref.run(10)
        sim.run(10)
        assert np.allclose(sim.f, ref.f, atol=1e-4)


class TestKernelPlanObject:
    def test_arena_accounting(self, q19):
        plan = KernelPlan(q19, (8, 8, 8))
        assert plan.num_cells == 512
        assert plan.nbytes > 0
        assert plan.dtype == np.float64

    def test_bad_shape_rejected(self, q19):
        with pytest.raises(LatticeError):
            KernelPlan(q19, (8, 8))

    def test_order_above_lattice_rejected(self, q19):
        with pytest.raises(LatticeError):
            KernelPlan(q19, (4, 4, 4), order=3)


class TestAutoVerdictCache:
    """kernel='auto' caches its verdict per (host, shape, lattice,
    order, dtype, candidates) so repeated builds skip re-timing."""

    def test_verdict_cached_and_reused(self, q19, tmp_path):
        first = auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        assert first.auto_cached is False
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        second = auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        assert second.auto_cached is True
        assert second.name == first.name
        assert second.auto_timings == first.auto_timings

    def test_key_distinguishes_shape_and_dtype(self, q19, tmp_path):
        auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        auto_select_kernel(q19, (7, 6, 6), tau=0.8, cache_dir=tmp_path)
        auto_select_kernel(
            q19, (6, 6, 6), tau=0.8, dtype="float32", cache_dir=tmp_path
        )
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_tau_does_not_change_the_key(self, q19, tmp_path):
        """tau scales the arithmetic, not the memory behaviour being
        raced, so verdicts are shared across tau values."""
        auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        hit = auto_select_kernel(q19, (6, 6, 6), tau=0.9, cache_dir=tmp_path)
        assert hit.auto_cached is True
        assert hit.collision.tau == 0.9

    def test_corrupt_record_retimes(self, q19, tmp_path):
        auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        (record,) = tmp_path.glob("*.json")
        record.write_text("{not json")
        kernel = auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        assert kernel.auto_cached is False

    def test_cache_false_neither_reads_nor_writes(self, q19, tmp_path):
        kernel = auto_select_kernel(
            q19, (6, 6, 6), tau=0.8, cache=False, cache_dir=tmp_path
        )
        assert kernel.auto_cached is False
        assert list(tmp_path.glob("*.json")) == []

    def test_env_disable(self, q19, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL_CACHE", "1")
        auto_select_kernel(q19, (6, 6, 6), tau=0.8, cache_dir=tmp_path)
        assert list(tmp_path.glob("*.json")) == []

    def test_cache_dir_env_override(self, q19, tmp_path, monkeypatch):
        from repro.core import kernel_cache_dir

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path / "kc"))
        assert kernel_cache_dir() == tmp_path / "kc"
        auto_select_kernel(q19, (6, 6, 6), tau=0.8)
        assert len(list((tmp_path / "kc").glob("*.json"))) == 1

    def test_simulation_auto_uses_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        Simulation("D3Q19", (6, 6, 6), tau=0.8, kernel="auto")
        sim = Simulation("D3Q19", (6, 6, 6), tau=0.8, kernel="auto")
        assert sim.kernel.auto_cached is True
