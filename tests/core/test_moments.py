"""Tests for macroscopic moment extraction."""

import numpy as np
import pytest

from repro.core import (
    density,
    deviatoric_stress,
    equilibrium,
    heat_flux,
    macroscopic,
    momentum,
    momentum_flux,
    velocity,
)


class TestBasicMoments:
    def test_density_is_population_sum(self, q19, rng):
        f = rng.random((19, 3, 3, 3))
        assert np.allclose(density(f), f.sum(axis=0))

    def test_velocity_of_equilibrium(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape)
        f = equilibrium(lat, rho, u)
        assert np.allclose(velocity(lat, f), u, atol=1e-13)

    def test_macroscopic_pair(self, q39, make_random_state, small_shape):
        rho, u = make_random_state(q39, small_shape)
        f = equilibrium(q39, rho, u)
        rho1, u1 = macroscopic(q39, f)
        assert np.allclose(rho1, rho, atol=1e-14)
        assert np.allclose(u1, u, atol=1e-13)

    def test_momentum_linear_in_f(self, q19, rng):
        f1 = rng.random((19, 2, 2, 2))
        f2 = rng.random((19, 2, 2, 2))
        m = momentum(q19, f1 + 2 * f2)
        assert np.allclose(m, momentum(q19, f1) + 2 * momentum(q19, f2))


class TestStressAndHeatFlux:
    def test_momentum_flux_symmetric(self, q39, rng):
        f = rng.random((39, 3, 3, 3))
        pi = momentum_flux(q39, f)
        assert np.allclose(pi, np.swapaxes(pi, 0, 1))

    def test_equilibrium_has_zero_deviatoric_stress(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape, amplitude=0.01)
        f = equilibrium(lat, rho, u)
        sigma = deviatoric_stress(lat, f)
        assert np.abs(sigma).max() < 1e-12

    def test_stress_detects_shear_perturbation(self, q19):
        rho = np.ones((2, 2, 2))
        u = np.zeros((3, 2, 2, 2))
        feq = equilibrium(q19, rho, u)
        c = q19.velocities
        w = q19.weights
        pert = 1e-4 * (w * (c[:, 0] * c[:, 1]).astype(float))[:, None, None, None]
        sigma = deviatoric_stress(q19, feq + pert)
        assert abs(sigma[0, 1]).max() > 1e-7
        # trace components unperturbed
        assert abs(sigma[2, 2]).max() < 1e-12

    def test_heat_flux_zero_at_equilibrium_on_d3q39(self, q39, make_random_state, small_shape):
        """Sixth-order quadrature transports the third moment correctly:
        a third-order equilibrium carries zero heat flux."""
        rho, u = make_random_state(q39, small_shape, amplitude=0.005)
        f = equilibrium(q39, rho, u, order=3)
        q = heat_flux(q39, f)
        assert np.abs(q).max() < 1e-6

    def test_heat_flux_nonzero_for_second_order_on_d3q19(self, q19):
        """D3Q19's truncated equilibrium leaks an O(u^3) heat flux —
        the moment error the paper's extension removes."""
        rho = np.ones((2, 2, 2))
        u = np.full((3, 2, 2, 2), 0.08)
        f = equilibrium(q19, rho, u, order=2)
        q = heat_flux(q19, f)
        assert np.abs(q).max() > 1e-5

    def test_heat_flux_scaling_with_mach(self, q19):
        """The spurious D3Q19 heat flux grows as u^3."""
        vals = []
        for mag in (0.02, 0.04):
            rho = np.ones((2, 2, 2))
            u = np.full((3, 2, 2, 2), mag)
            f = equilibrium(q19, rho, u)
            vals.append(np.abs(heat_flux(q19, f)).max())
        assert vals[1] / vals[0] == pytest.approx(8.0, rel=0.15)
