"""Tests for obstacle masks and momentum-exchange force measurement."""

import numpy as np
import pytest

from repro.core import (
    BounceBackWalls,
    GuoForcing,
    Simulation,
    channel_walls_mask,
    cylinder_mask,
    momentum_exchange_force,
    sphere_mask,
    total_momentum,
    uniform_flow,
)


class TestMasks:
    def test_sphere_volume(self):
        mask = sphere_mask((20, 20, 20), centre=(10, 10, 10), radius=5.0)
        volume = mask.sum()
        assert volume == pytest.approx(4 / 3 * np.pi * 125, rel=0.1)

    def test_sphere_symmetry(self):
        mask = sphere_mask((21, 21, 21), centre=(10, 10, 10), radius=5.0)
        assert np.array_equal(mask, mask[::-1])
        assert np.array_equal(mask, mask.transpose(1, 0, 2))

    def test_cylinder_spans_axis(self):
        mask = cylinder_mask((12, 15, 15), axis=0, centre=(7, 7), radius=3.0)
        per_slice = mask.sum(axis=(1, 2))
        assert (per_slice == per_slice[0]).all()
        assert per_slice[0] == pytest.approx(np.pi * 9, rel=0.2)

    def test_channel_walls(self):
        mask = channel_walls_mask((6, 10, 6), axis=1, thickness=2)
        assert mask[:, :2, :].all() and mask[:, -2:, :].all()
        assert not mask[:, 2:-2, :].any()


class TestMomentumExchange:
    def test_zero_force_in_quiescent_fluid(self, q19):
        shape = (12, 12, 12)
        solid = sphere_mask(shape, (6, 6, 6), 3.0)
        sim = Simulation(q19, shape, tau=0.8, boundaries=[BounceBackWalls(q19, solid)])
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(5)
        # measure on freshly streamed populations
        from repro.core import stream_periodic

        adv = stream_periodic(q19, sim.f)
        force = momentum_exchange_force(q19, adv, solid)
        assert np.abs(force).max() < 1e-12

    def test_bookkeeping_force_equals_momentum_change(self, q19):
        """Reversal at solid nodes removes exactly the measured momentum."""
        shape = (12, 10, 10)
        solid = sphere_mask(shape, (6, 5, 5), 2.5)
        rng = np.random.default_rng(3)
        from repro.core import equilibrium, stream_periodic

        rho = 1.0 + 0.01 * rng.standard_normal(shape)
        u = 0.02 * rng.standard_normal((3, *shape))
        f = equilibrium(q19, rho, u)
        adv = stream_periodic(q19, f)
        force = momentum_exchange_force(q19, adv, solid)
        before = total_momentum(q19, adv)
        BounceBackWalls(q19, solid).apply(adv, f)
        after = total_momentum(q19, adv)
        assert np.allclose(before - after, force, atol=1e-13)

    def test_drag_balances_driving_force_at_steady_state(self, q19):
        """Forced flow past a cylinder: at steady state the body drag
        equals the total injected body force."""
        shape = (16, 13, 13)
        solid = cylinder_mask(shape, axis=2, centre=(8, 6), radius=2.0)
        body_force = 2e-6
        sim = Simulation(
            q19,
            shape,
            tau=0.9,
            boundaries=[BounceBackWalls(q19, solid)],
            forcing=GuoForcing(q19, (body_force, 0.0, 0.0)),
        )
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(800)
        from repro.core import stream_periodic

        adv = stream_periodic(q19, sim.f)
        drag = momentum_exchange_force(q19, adv, solid)[0]
        injected = body_force * sim.num_cells
        assert drag == pytest.approx(injected, rel=0.05)
        assert drag > 0  # force points downstream
