"""The float32/float64 dtype policy across fields, equilibria, moments, io."""

import numpy as np
import pytest

from repro.core import (
    DistributionField,
    Simulation,
    compute_dtype,
    equilibrium,
    load_checkpoint,
    load_checkpoint_data,
    macroscopic,
    momentum,
    resolve_dtype,
    save_checkpoint,
)
from repro.errors import LatticeError
from repro.lattice import get_lattice


class TestResolveDtype:
    def test_accepted_spellings(self):
        assert resolve_dtype(None) == np.float64
        assert resolve_dtype("float64") == np.float64
        assert resolve_dtype("float32") == np.float32
        assert resolve_dtype(np.float32) == np.float32
        assert resolve_dtype(np.dtype(np.float64)) == np.float64

    @pytest.mark.parametrize("bad", ["float16", "int32", "complex128", object])
    def test_rejected(self, bad):
        with pytest.raises(LatticeError):
            resolve_dtype(bad)


class TestComputeDtype:
    def test_float32_arrays_stay_float32(self):
        a = np.ones(3, dtype=np.float32)
        assert compute_dtype(a, a) == np.float32

    def test_python_scalars_are_weak(self):
        a = np.ones(3, dtype=np.float32)
        assert compute_dtype(1.0, a) == np.float32
        assert compute_dtype(2, a) == np.float32

    def test_mixed_promotes_to_float64(self):
        a32 = np.ones(3, dtype=np.float32)
        a64 = np.ones(3)
        assert compute_dtype(a32, a64) == np.float64

    def test_default_is_float64(self):
        assert compute_dtype() == np.float64
        assert compute_dtype(1.0) == np.float64
        assert compute_dtype(np.ones(3, dtype=int)) == np.float64


class TestFieldDtype:
    def test_float32_preserved(self, q19):
        data = np.zeros((q19.q, 4, 4, 4), dtype=np.float32)
        field = DistributionField(q19, data)
        assert field.dtype == np.float32

    def test_other_dtypes_become_float64(self, q19):
        data = np.zeros((q19.q, 4, 4, 4), dtype=np.int32)
        assert DistributionField(q19, data).dtype == np.float64

    def test_zeros_dtype(self, q19):
        assert DistributionField.zeros(q19, (4, 4, 4)).dtype == np.float64
        f32 = DistributionField.zeros(q19, (4, 4, 4), dtype="float32")
        assert f32.dtype == np.float32

    def test_from_equilibrium_dtype(self, q19):
        rho = np.ones((4, 4, 4))
        u = np.zeros((3, 4, 4, 4))
        field = DistributionField.from_equilibrium(q19, rho, u, dtype="float32")
        assert field.dtype == np.float32
        assert np.allclose(field.data.sum(axis=0), 1.0, atol=1e-6)

    def test_astype_roundtrip(self, q19):
        field = DistributionField.zeros(q19, (4, 4, 4))
        field.data[...] = np.random.default_rng(0).random(field.data.shape)
        cast = field.astype("float32")
        assert cast.dtype == np.float32
        back = cast.astype("float64")
        assert np.allclose(back.data, field.data, atol=1e-7)


class TestEquilibriumDtype:
    def test_follows_inputs(self, q19):
        rho32 = np.ones((3, 3, 3), dtype=np.float32)
        u32 = np.zeros((3, 3, 3, 3), dtype=np.float32)
        assert equilibrium(q19, rho32, u32).dtype == np.float32
        assert equilibrium(q19, rho32.astype(np.float64), u32).dtype == np.float64

    def test_explicit_dtype_wins(self, q19):
        rho = np.ones((3, 3, 3))
        u = np.zeros((3, 3, 3, 3))
        assert equilibrium(q19, rho, u, dtype="float32").dtype == np.float32

    def test_out_dtype_wins(self, q19):
        rho = np.ones((3, 3, 3))
        u = np.zeros((3, 3, 3, 3))
        out = np.empty((q19.q, 3, 3, 3), dtype=np.float32)
        got = equilibrium(q19, rho, u, out=out)
        assert got is out

    def test_float32_close_to_float64(self, paper_lattice, make_random_state):
        rho, u = make_random_state(paper_lattice, (4, 4, 4))
        f64 = equilibrium(paper_lattice, rho, u)
        f32 = equilibrium(
            paper_lattice,
            rho.astype(np.float32),
            u.astype(np.float32),
        )
        assert f32.dtype == np.float32
        assert np.allclose(f32, f64, atol=1e-6)


class TestMomentDtype:
    def test_macroscopic_preserves_float32(self, q19, make_random_state):
        rho, u = make_random_state(q19, (4, 4, 4))
        f = equilibrium(q19, rho, u, dtype="float32")
        rho32, u32 = macroscopic(q19, f)
        assert rho32.dtype == np.float32
        assert u32.dtype == np.float32
        assert momentum(q19, f).dtype == np.float32

    def test_velocity_cast_cache_is_shared(self, q19):
        a = q19.velocities_as(np.float32)
        b = q19.velocities_as("float32")
        assert a is b
        assert not a.flags.writeable
        assert q19.weights_as(np.float64).dtype == np.float64


class TestCheckpointDtype:
    @pytest.mark.parametrize("dtype", ["float32", "float64"])
    def test_roundtrip_preserves_dtype(self, tmp_path, dtype):
        sim = Simulation("D3Q19", (4, 4, 4), tau=0.8, dtype=dtype)
        rng = np.random.default_rng(1)
        sim.initialize(np.ones(sim.shape), 0.01 * rng.standard_normal((3, 4, 4, 4)))
        sim.run(3)
        path = tmp_path / "state.npz"
        save_checkpoint(path, sim)
        data = load_checkpoint_data(path)
        assert data.dtype == dtype
        assert str(data.f.dtype) == dtype
        restored = load_checkpoint(path)
        assert str(restored.f.dtype) == dtype
        assert np.array_equal(restored.f, sim.f)

    def test_roundtrip_preserves_kernel(self, tmp_path):
        sim = Simulation("D3Q19", (4, 4, 4), tau=0.8, kernel="planned")
        sim.initialize(np.ones(sim.shape), np.zeros((3, 4, 4, 4)))
        sim.run(2)
        path = tmp_path / "k.npz"
        save_checkpoint(path, sim)
        data = load_checkpoint_data(path)
        assert data.kernel == "planned"
        restored = load_checkpoint(path)
        assert restored.kernel is not None
        assert restored.kernel.name == "planned"
        # legacy-pair checkpoints restore with no kernel
        legacy = Simulation("D3Q19", (4, 4, 4), tau=0.8)
        legacy.initialize(np.ones(legacy.shape), np.zeros((3, 4, 4, 4)))
        save_checkpoint(path, legacy)
        assert load_checkpoint_data(path).kernel is None
        assert load_checkpoint(path).kernel is None

    def test_restored_simulation_continues_bit_exactly(self, tmp_path):
        rng = np.random.default_rng(2)
        u0 = 0.01 * rng.standard_normal((3, 4, 4, 4))
        sim = Simulation("D3Q19", (4, 4, 4), tau=0.8, dtype="float32")
        sim.initialize(np.ones(sim.shape), u0)
        sim.run(2)
        path = tmp_path / "mid.npz"
        save_checkpoint(path, sim)
        sim.run(3)
        resumed = load_checkpoint(path)
        resumed.run(3)
        assert np.array_equal(resumed.f, sim.f)


class TestRunnerDtypeGuard:
    def test_cross_dtype_restore_rejected(self, tmp_path):
        from repro.errors import ScenarioError
        from repro.scenarios import CaseRunner

        runner64 = CaseRunner("taylor-green", steps=4, monitor_every=2)
        path = tmp_path / "tg.npz"
        result = runner64.run(checkpoint=path)
        assert result.metrics["steps_run"] == 4
        runner32 = CaseRunner(
            "taylor-green", steps=8, monitor_every=2, dtype="float32"
        )
        with pytest.raises(ScenarioError, match="dtype"):
            runner32.run(resume=path)

    def test_cross_kernel_restore_rejected(self, tmp_path):
        from repro.errors import ScenarioError
        from repro.scenarios import CaseRunner

        planned = CaseRunner(
            "taylor-green", steps=4, monitor_every=2, kernel="planned"
        )
        path = tmp_path / "tg.npz"
        planned.run(checkpoint=path)
        legacy = CaseRunner("taylor-green", steps=8, monitor_every=2)
        with pytest.raises(ScenarioError, match="kernel"):
            legacy.run(resume=path)
        # same-kernel resume continues fine
        again = CaseRunner(
            "taylor-green", steps=8, monitor_every=2, kernel="planned"
        )
        result = again.run(resume=path)
        assert result.metrics["steps_run"] == 8
