"""Property-based tests on core solver invariants."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core import (
    BGKCollision,
    HermiteMRTCollision,
    RegularizedBGKCollision,
    equilibrium,
    macroscopic,
    stream_periodic,
)
from repro.lattice import get_lattice

LATTICES = ("D3Q19", "D3Q39")


@st.composite
def random_states(draw):
    lname = draw(st.sampled_from(LATTICES))
    lat = get_lattice(lname)
    nx = draw(st.integers(3, 6))
    ny = draw(st.integers(3, 6))
    nz = draw(st.integers(3, 6))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    rho = 1.0 + 0.05 * rng.standard_normal((nx, ny, nz))
    u = 0.03 * rng.standard_normal((3, nx, ny, nz))
    f = equilibrium(lat, rho, u)
    f += 1e-3 * rng.standard_normal(f.shape) * f  # relative perturbation
    return lat, f


@given(state=random_states(), tau=st.floats(0.51, 2.0))
@settings(max_examples=30, deadline=None)
def test_bgk_conserves_for_any_state(state, tau):
    lat, f = state
    rho0, u0 = macroscopic(lat, f)
    out = BGKCollision(lat, tau=tau).apply(f.copy())
    rho1, u1 = macroscopic(lat, out)
    assert np.allclose(rho1, rho0, rtol=1e-12)
    assert np.allclose(rho1[None] * u1, rho0[None] * u0, atol=1e-12)


@given(state=random_states(), tau=st.floats(0.55, 1.8))
@settings(max_examples=20, deadline=None)
def test_all_collision_operators_agree_on_conservation(state, tau):
    lat, f = state
    rho0, _ = macroscopic(lat, f)
    for op in (
        BGKCollision(lat, tau=tau),
        RegularizedBGKCollision(lat, tau=tau),
        HermiteMRTCollision(lat, tau_shear=tau, tau_bulk=1.5 * tau),
    ):
        out = op.apply(f.copy())
        assert np.allclose(out.sum(axis=0), rho0, rtol=1e-12)


@given(state=random_states())
@settings(max_examples=20, deadline=None)
def test_streaming_permutes_each_population(state):
    lat, f = state
    out = stream_periodic(lat, f)
    for i in range(lat.q):
        assert np.isclose(out[i].sum(), f[i].sum(), rtol=1e-13)
        assert np.isclose(np.abs(out[i]).max(), np.abs(f[i]).max(), rtol=1e-13)


@given(
    state=random_states(),
    tau=st.floats(0.55, 1.5),
    steps=st.integers(1, 4),
)
@settings(max_examples=15, deadline=None)
def test_stream_collide_cycle_conserves(state, tau, steps):
    lat, f = state
    op = BGKCollision(lat, tau=tau)
    mass0 = f.sum()
    cur = f
    for _ in range(steps):
        cur = op.apply(stream_periodic(lat, cur))
    assert np.isclose(cur.sum(), mass0, rtol=1e-12)


@given(
    kn=st.floats(0.001, 2.0),
    length=st.integers(4, 256),
    lname=st.sampled_from(LATTICES),
)
def test_knudsen_tau_roundtrip_property(kn, length, lname):
    from repro.core import knudsen_number, tau_for_knudsen

    cs2 = get_lattice(lname).cs2_float
    tau = tau_for_knudsen(kn, length, cs2)
    assert tau > 0.5
    assert np.isclose(knudsen_number(tau, length, cs2), kn, rtol=1e-12)
