"""Tests for diagnostic observables."""

import numpy as np
import pytest

from repro.core import (
    Simulation,
    enstrophy,
    equilibrium,
    kinetic_energy,
    mach_number_field,
    max_speed,
    taylor_green,
    total_mass,
    total_momentum,
    uniform_flow,
    velocity_profile,
)


class TestGlobalQuantities:
    def test_total_mass(self, q19):
        f = np.full((19, 2, 2, 2), 0.5)
        assert total_mass(f) == pytest.approx(19 * 8 * 0.5)

    def test_total_momentum_of_uniform_flow(self, q39):
        rho, u = uniform_flow((3, 3, 3), velocity=(0.02, 0.0, -0.01))
        f = equilibrium(q39, rho, u)
        mom = total_momentum(q39, f)
        assert mom[0] == pytest.approx(27 * 0.02)
        assert mom[2] == pytest.approx(-27 * 0.01)

    def test_kinetic_energy_of_uniform_flow(self, q19):
        rho, u = uniform_flow((4, 4, 4), velocity=(0.03, 0.0, 0.0))
        f = equilibrium(q19, rho, u)
        assert kinetic_energy(q19, f) == pytest.approx(0.5 * 64 * 0.03**2)

    def test_max_speed_and_mach(self, q19):
        rho, u = uniform_flow((3, 3, 3), velocity=(0.06, 0.0, 0.0))
        f = equilibrium(q19, rho, u)
        assert max_speed(q19, f) == pytest.approx(0.06, rel=1e-10)
        mach = mach_number_field(q19, f)
        assert mach.max() == pytest.approx(0.06 * np.sqrt(3), rel=1e-10)


class TestEnstrophy:
    def test_zero_for_uniform_flow(self, q19):
        rho, u = uniform_flow((4, 4, 4), velocity=(0.02, 0.01, 0.0))
        f = equilibrium(q19, rho, u)
        assert enstrophy(q19, f) == pytest.approx(0.0, abs=1e-20)

    def test_positive_for_taylor_green(self, q19):
        rho, u = taylor_green((16, 16, 4), u0=1e-3)
        f = equilibrium(q19, rho, u)
        assert enstrophy(q19, f) > 0

    def test_decays_under_viscosity(self):
        shape = (16, 16, 4)
        sim = Simulation("D3Q19", shape, tau=0.8)
        rho, u = taylor_green(shape, u0=1e-3)
        sim.initialize(rho, u)
        w0 = enstrophy(sim.lattice, sim.f)
        sim.run(60)
        assert enstrophy(sim.lattice, sim.f) < w0


class TestVelocityProfile:
    def test_profile_shape_and_averaging(self, q19):
        shape = (4, 9, 5)
        rho = np.ones(shape)
        u = np.zeros((3, *shape))
        u[0] = np.linspace(0, 0.01, 9)[None, :, None]
        f = equilibrium(q19, rho, u)
        profile = velocity_profile(q19, f, flow_axis=0, across_axis=1)
        assert profile.shape == (9,)
        assert np.allclose(profile, np.linspace(0, 0.01, 9), atol=1e-12)
