"""Integration tests of the single-domain driver (physics anchors)."""

import numpy as np
import pytest

from repro.core import (
    Simulation,
    kinetic_energy,
    macroscopic,
    shear_wave,
    taylor_green,
    total_mass,
    total_momentum,
    uniform_flow,
)
from repro.errors import StabilityError


class TestShearWaveViscometry:
    """The decay rate pins nu = cs2 (tau - 1/2) — the core physics check."""

    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    @pytest.mark.parametrize("tau", [0.65, 0.8, 1.2])
    def test_decay_rate(self, lname, tau):
        shape = (32, 6, 6)
        sim = Simulation(lname, shape, tau=tau)
        rho, u = shear_wave(shape, amplitude=1e-4)
        sim.initialize(rho, u)
        steps = 150
        sim.run(steps)
        _, uu = macroscopic(sim.lattice, sim.f)
        amp = np.abs(uu[1]).max()
        nu = sim.lattice.cs2_float * (tau - 0.5)
        k = 2 * np.pi / shape[0]
        expected = 1e-4 * np.exp(-nu * k * k * steps)
        # discrete-lattice dispersion grows with tau; 3% covers tau=1.2
        assert amp == pytest.approx(expected, rel=0.03)

    def test_order2_vs_order3_agree_at_low_mach(self):
        """On D3Q39 the extra Hermite term is O(Ma^3) — negligible here."""
        shape = (24, 6, 6)
        results = []
        for order in (2, 3):
            sim = Simulation("D3Q39", shape, tau=0.8, order=order)
            rho, u = shear_wave(shape, amplitude=1e-5)
            sim.initialize(rho, u)
            sim.run(60)
            results.append(sim.f.copy())
        assert np.allclose(results[0], results[1], atol=1e-12)


class TestTaylorGreen:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_energy_decay(self, lname):
        """Windowed decay rate (skips the acoustic transient of the
        pressure-less initialisation)."""
        shape = (24, 24, 4)
        sim = Simulation(lname, shape, tau=0.7)
        rho, u = taylor_green(shape, u0=1e-3)
        sim.initialize(rho, u)
        sim.run(60)
        e_mid = kinetic_energy(sim.lattice, sim.f)
        sim.run(60)
        e_end = kinetic_energy(sim.lattice, sim.f)
        nu = sim.lattice.cs2_float * 0.2
        k = 2 * np.pi / 24
        expected = np.exp(-4 * nu * k * k * 60)
        # D3Q39's longer velocities carry larger O(k^2) dispersion error
        assert e_end / e_mid == pytest.approx(expected, rel=0.05)

    def test_requires_square_cross_section(self):
        with pytest.raises(ValueError):
            taylor_green((16, 24, 4))


class TestConservation:
    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_mass_and_momentum_exact(self, lname, rng):
        shape = (10, 8, 6)
        sim = Simulation(lname, shape, tau=0.9)
        rho = 1.0 + 0.01 * rng.standard_normal(shape)
        u = 0.01 * rng.standard_normal((3, *shape))
        sim.initialize(rho, u)
        m0 = total_mass(sim.f)
        p0 = total_momentum(sim.lattice, sim.f)
        sim.run(25)
        assert total_mass(sim.f) == pytest.approx(m0, rel=1e-13)
        assert np.allclose(total_momentum(sim.lattice, sim.f), p0, atol=1e-11)


class TestSoundSpeed:
    @pytest.mark.parametrize("lname,cs2", [("D3Q19", 1 / 3), ("D3Q39", 2 / 3)])
    def test_pulse_front_speed(self, lname, cs2):
        """An acoustic pulse front travels at c_s — physically different
        between the two lattices (1/sqrt(3) vs sqrt(2/3))."""
        n = 48
        shape = (n, 4, 4)
        sim = Simulation(lname, shape, tau=0.55)
        rho = np.ones(shape)
        rho[n // 2] += 1e-4  # plane pulse
        u = np.zeros((3, *shape))
        sim.initialize(rho, u)
        steps = 12
        sim.run(steps)
        rho_out, _ = macroscopic(sim.lattice, sim.f)
        profile = rho_out.mean(axis=(1, 2)) - 1.0
        # front position = argmax of the rightward-travelling wave
        right = profile[n // 2 : n // 2 + 24]
        front = int(np.argmax(right))
        expected = np.sqrt(cs2) * steps
        assert front == pytest.approx(expected, abs=1.5)


class TestDriverMechanics:
    def test_stability_check_raises(self):
        """The periodic check reports non-finite populations."""
        sim = Simulation("D3Q19", (8, 8, 8), tau=0.8)
        rho, u = uniform_flow((8, 8, 8))
        sim.initialize(rho, u)
        sim.field.data[0, 0, 0, 0] = np.inf
        with pytest.raises(StabilityError, match="non-finite"):
            sim.run(10, check_stability_every=1)

    def test_stability_check_off_by_default(self):
        sim = Simulation("D3Q19", (6, 6, 6), tau=0.8)
        rho, u = uniform_flow((6, 6, 6))
        sim.initialize(rho, u)
        sim.field.data[0, 0, 0, 0] = np.nan
        sim.run(3)  # does not raise without the check

    def test_monitor_called(self):
        sim = Simulation("D3Q19", (6, 6, 6), tau=0.8)
        rho, u = uniform_flow((6, 6, 6))
        sim.initialize(rho, u)
        calls = []
        sim.run(10, monitor=lambda s: calls.append(s.time_step), monitor_every=2)
        assert calls == [2, 4, 6, 8, 10]

    def test_timings_accumulate(self):
        sim = Simulation("D3Q19", (8, 8, 8), tau=0.8)
        rho, u = uniform_flow((8, 8, 8))
        sim.initialize(rho, u)
        sim.run(5)
        assert sim.timings.steps == 5
        assert sim.timings.total_seconds > 0
        assert sim.mflups() > 0

    def test_initialize_resets_clock(self):
        sim = Simulation("D3Q19", (6, 6, 6), tau=0.8)
        rho, u = uniform_flow((6, 6, 6))
        sim.initialize(rho, u)
        sim.run(3)
        sim.initialize(rho, u)
        assert sim.time_step == 0
        assert sim.timings.steps == 0

    def test_uniform_flow_is_invariant(self, paper_lattice):
        """A uniform moving fluid in a periodic box stays exactly uniform."""
        shape = (6, 6, 6)
        sim = Simulation(paper_lattice, shape, tau=0.8)
        rho, u = uniform_flow(shape, velocity=(0.02, -0.01, 0.005))
        sim.initialize(rho, u)
        f0 = sim.f.copy()
        sim.run(8)
        assert np.allclose(sim.f, f0, atol=1e-13)
