"""Claim-file primitives: atomicity, ownership, stale breaking."""

import json

from repro.core.io import (
    ClaimRecord,
    break_claim,
    read_claim,
    refresh_claim,
    release_claim,
    write_claim,
)


def record(owner="w1", resource="fp", expires=100.0):
    return ClaimRecord(
        owner=owner,
        resource=resource,
        host="testhost",
        pid=1234,
        acquired_at=50.0,
        expires_at=expires,
    )


class TestWriteClaim:
    def test_first_writer_wins(self, tmp_path):
        path = tmp_path / "v.lease"
        assert write_claim(path, record(owner="a"))
        assert not write_claim(path, record(owner="b"))
        assert read_claim(path).owner == "a"

    def test_roundtrip_preserves_fields(self, tmp_path):
        path = tmp_path / "v.lease"
        original = record()
        write_claim(path, original)
        assert read_claim(path) == original


class TestReadClaim:
    def test_missing_file(self, tmp_path):
        assert read_claim(tmp_path / "absent.lease") is None

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "v.lease"
        path.write_text("{torn write")
        assert read_claim(path) is None

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "v.lease"
        path.write_text(json.dumps({"owner": "a"}))  # missing fields
        assert read_claim(path) is None


class TestRefreshClaim:
    def test_replaces_atomically(self, tmp_path):
        path = tmp_path / "v.lease"
        write_claim(path, record(expires=100.0))
        refresh_claim(path, record(expires=200.0))
        assert read_claim(path).expires_at == 200.0
        # no temp debris left behind
        assert list(tmp_path.iterdir()) == [path]


class TestReleaseClaim:
    def test_owner_releases(self, tmp_path):
        path = tmp_path / "v.lease"
        write_claim(path, record(owner="a"))
        assert release_claim(path, "a")
        assert not path.exists()

    def test_non_owner_cannot_release(self, tmp_path):
        path = tmp_path / "v.lease"
        write_claim(path, record(owner="a"))
        assert not release_claim(path, "b")
        assert path.exists()

    def test_release_missing_is_noop(self, tmp_path):
        assert not release_claim(tmp_path / "absent.lease", "a")


class TestBreakClaim:
    def test_exactly_one_breaker_wins(self, tmp_path):
        path = tmp_path / "v.lease"
        write_claim(path, record())
        assert break_claim(path)
        assert not break_claim(path)  # already gone
        assert read_claim(path) is None

    def test_breaker_then_writer_recovers_the_resource(self, tmp_path):
        path = tmp_path / "v.lease"
        write_claim(path, record(owner="dead"))
        assert break_claim(path)
        assert write_claim(path, record(owner="rescuer"))
        assert read_claim(path).owner == "rescuer"
