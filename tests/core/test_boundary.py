"""Tests for bounce-back and diffuse-wall boundary conditions."""

import numpy as np
import pytest

from repro.core import (
    BounceBackWalls,
    DiffuseWallPair,
    GuoForcing,
    MovingWallBounceBack,
    Simulation,
    macroscopic,
    total_mass,
    uniform_flow,
    velocity_profile,
)
from repro.errors import LatticeError


class TestBounceBack:
    def test_reverses_populations_on_solid(self, q19, rng):
        f = rng.random((19, 4, 4, 4))
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0] = True
        bc = BounceBackWalls(q19, mask)
        before = f[:, mask].copy()
        bc.apply(f, f)
        assert np.allclose(f[:, mask], before[q19.opposite])
        assert np.allclose(f[:, ~mask], f[:, ~mask])

    def test_conserves_mass(self, paper_lattice, rng):
        lat = paper_lattice
        f = rng.random((lat.q, 4, 4, 4))
        mask = rng.random((4, 4, 4)) < 0.3
        m0 = total_mass(f)
        BounceBackWalls(lat, mask).apply(f, f)
        assert total_mass(f) == pytest.approx(m0, rel=1e-14)

    def test_mask_shape_checked(self, q19):
        bc = BounceBackWalls(q19, np.zeros((3, 3, 3), dtype=bool))
        f = np.zeros((19, 4, 4, 4))
        with pytest.raises(LatticeError, match="mask"):
            bc.apply(f, f)

    def test_channel_flow_no_slip(self, q19):
        """Forced channel with bounce-back walls: near-zero wall velocity,
        maximum at the centre (Poiseuille-like)."""
        shape = (4, 15, 4)
        mask = np.zeros(shape, dtype=bool)
        mask[:, 0, :] = True
        mask[:, -1, :] = True
        sim = Simulation(
            q19,
            shape,
            tau=0.9,
            boundaries=[BounceBackWalls(q19, mask)],
            forcing=GuoForcing(q19, (1e-6, 0.0, 0.0)),
        )
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(400)
        profile = velocity_profile(q19, sim.f, flow_axis=0, across_axis=1)
        centre = profile[len(profile) // 2]
        assert centre > 0
        # solid rows carry reversed populations; fluid next to wall slow
        assert profile[1] < 0.55 * centre
        # symmetric about the channel centre
        assert profile[2] == pytest.approx(profile[-3], rel=1e-6)


class TestMovingWallBounceBack:
    def test_correction_carries_zero_mass(self, paper_lattice, rng):
        lat = paper_lattice
        f = rng.random((lat.q, 4, 4, 4))
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[:, :, -1] = True
        bc = MovingWallBounceBack(lat, mask, wall_velocity=(0.05, 0.0, 0.0))
        m0 = total_mass(f)
        bc.apply(f, f)
        assert total_mass(f) == pytest.approx(m0, rel=1e-13)

    def test_zero_velocity_reduces_to_bounce_back(self, q19, rng):
        f = rng.random((19, 4, 4, 4))
        g = f.copy()
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0] = True
        MovingWallBounceBack(q19, mask).apply(f, f)
        BounceBackWalls(q19, mask).apply(g, g)
        np.testing.assert_array_equal(f, g)

    def test_wall_velocity_dimension_checked(self, q19):
        with pytest.raises(LatticeError, match="components"):
            MovingWallBounceBack(
                q19, np.zeros((4, 4, 4), dtype=bool), wall_velocity=(0.1, 0.0)
            )

    def test_moving_lid_drags_fluid(self, q19):
        """Couette-like box: the translating wall imparts its momentum."""
        shape = (4, 4, 11)
        lid = np.zeros(shape, dtype=bool)
        lid[:, :, -1] = True
        floor = np.zeros(shape, dtype=bool)
        floor[:, :, 0] = True
        sim = Simulation(
            q19,
            shape,
            tau=0.8,
            boundaries=[
                BounceBackWalls(q19, floor),
                MovingWallBounceBack(q19, lid, wall_velocity=(0.02, 0.0, 0.0)),
            ],
        )
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(300)
        profile = velocity_profile(q19, sim.f, flow_axis=0, across_axis=2)
        # fluid under the lid moves with it; speed decays towards the floor
        assert profile[-2] > 0
        assert profile[-2] > profile[5] > 0
        assert abs(profile[1]) < profile[-2]


class TestDiffuseWall:
    def _couette(self, lattice, steps=300, uw=0.01, ny=11):
        shape = (4, ny, 4)
        bc = DiffuseWallPair(
            lattice,
            axis=1,
            wall_velocity_low=(0.0, 0.0, 0.0),
            wall_velocity_high=(uw, 0.0, 0.0),
        )
        sim = Simulation(lattice, shape, tau=0.8, boundaries=[bc])
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(steps)
        return sim

    def test_validation(self, q19):
        with pytest.raises(LatticeError, match="axis"):
            DiffuseWallPair(q19, axis=5)
        with pytest.raises(LatticeError, match="tangential"):
            DiffuseWallPair(q19, axis=1, wall_velocity_low=(0.0, 0.1, 0.0))
        with pytest.raises(LatticeError, match="components"):
            DiffuseWallPair(q19, axis=1, wall_velocity_low=(0.0, 0.0))

    @pytest.mark.parametrize("lname", ["D3Q19", "D3Q39"])
    def test_mass_conserved_every_step(self, lname):
        from repro.lattice import get_lattice

        lat = get_lattice(lname)
        shape = (4, 9, 4)
        bc = DiffuseWallPair(lat, axis=1)
        sim = Simulation(lat, shape, tau=0.8, boundaries=[bc])
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        m0 = total_mass(sim.f)
        for _ in range(10):
            sim.step()
            assert total_mass(sim.f) == pytest.approx(m0, rel=1e-12)

    def test_couette_drags_fluid(self, q19):
        sim = self._couette(q19)
        profile = velocity_profile(q19, sim.f, flow_axis=0, across_axis=1)
        # monotone increasing from stationary to moving wall
        assert profile[-1] > profile[0]
        assert all(b >= a - 1e-9 for a, b in zip(profile, profile[1:]))

    def test_couette_has_slip_at_finite_kn(self, q19):
        """The fluid next to a diffuse wall does not reach the wall
        velocity — velocity slip, the signature kinetic effect."""
        uw = 0.01
        sim = self._couette(q19, uw=uw, steps=600)
        profile = velocity_profile(q19, sim.f, flow_axis=0, across_axis=1)
        assert profile[-2] < 0.95 * uw  # fluid lags the wall
        assert profile[1] > 0.0  # and slips over the stationary wall

    def test_d3q39_multilayer_wall(self, q39):
        """k=3 lattice: populations crossing from layers 0..2 handled."""
        sim = self._couette(q39, steps=120, ny=13)
        assert sim.field.is_finite()
        profile = velocity_profile(q39, sim.f, flow_axis=0, across_axis=1)
        assert profile[-1] > profile[0]

    def test_rest_state_is_stationary(self, q19):
        """No walls moving, uniform fluid: diffuse walls change nothing."""
        shape = (4, 9, 4)
        bc = DiffuseWallPair(q19, axis=1)
        sim = Simulation(q19, shape, tau=0.8, boundaries=[bc])
        rho, u = uniform_flow(shape)
        sim.initialize(rho, u)
        sim.run(5)
        _, u_out = macroscopic(q19, sim.f)
        assert np.abs(u_out).max() < 1e-13
