"""Tests for BGK and regularized collision operators."""

import numpy as np
import pytest

from repro.core import (
    BGKCollision,
    RegularizedBGKCollision,
    equilibrium,
    macroscopic,
    tau_from_viscosity,
    viscosity_from_tau,
)
from repro.errors import LatticeError


class TestViscosityRelation:
    def test_roundtrip(self):
        for tau in (0.6, 1.0, 1.7):
            nu = viscosity_from_tau(tau, 1 / 3)
            assert tau_from_viscosity(nu, 1 / 3) == pytest.approx(tau)

    def test_tau_half_gives_zero_viscosity(self):
        assert viscosity_from_tau(0.5, 2 / 3) == 0.0

    def test_operator_property(self, q39):
        op = BGKCollision(q39, tau=0.9)
        assert op.viscosity == pytest.approx((2 / 3) * 0.4)
        assert op.omega == pytest.approx(1 / 0.9)


class TestBGK:
    def test_tau_validation(self, q19):
        with pytest.raises(LatticeError, match="tau"):
            BGKCollision(q19, tau=0.5)

    def test_conserves_mass_and_momentum(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape)
        f = equilibrium(lat, rho, u)
        f += 0.001 * np.random.default_rng(1).standard_normal(f.shape)
        rho0, u0 = macroscopic(lat, f)
        mom0 = rho0[None] * u0
        op = BGKCollision(lat, tau=0.8)
        out = op.apply(f.copy())
        rho1, u1 = macroscopic(lat, out)
        assert np.allclose(rho1, rho0, atol=1e-13)
        assert np.allclose(rho1[None] * u1, mom0, atol=1e-13)

    def test_equilibrium_is_fixed_point(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape)
        feq = equilibrium(lat, rho, u)
        op = BGKCollision(lat, tau=0.7)
        out = op.apply(feq.copy())
        assert np.allclose(out, feq, atol=1e-13)

    def test_tau_one_jumps_to_equilibrium(self, q19, make_random_state, small_shape):
        rho, u = make_random_state(q19, small_shape)
        f = equilibrium(q19, rho, u)
        f += 1e-4 * np.random.default_rng(2).standard_normal(f.shape)
        op = BGKCollision(q19, tau=1.0)
        out = op.apply(f.copy())
        rho1, u1 = macroscopic(q19, out)
        feq = equilibrium(q19, rho1, u1)
        assert np.allclose(out, feq, atol=1e-12)

    def test_relaxation_rate(self, q19):
        """Non-equilibrium part shrinks by exactly (1 - omega) per collision."""
        rho = np.ones((3, 3, 3))
        u = np.zeros((3, 3, 3, 3))
        feq = equilibrium(q19, rho, u)
        # perturbation with zero mass/momentum: a symmetric stress mode
        pert = np.zeros_like(feq)
        c = q19.velocities
        mode = (c[:, 0] ** 2 - c[:, 1] ** 2).astype(float)
        pert += 1e-5 * mode[:, None, None, None]
        f = feq + pert
        op = BGKCollision(q19, tau=0.8)
        out = op.apply(f.copy())
        nonzero = np.abs(pert) > 0
        shrink = (out - feq)[nonzero] / pert[nonzero]
        assert np.allclose(shrink, 1.0 - op.omega, atol=1e-6)

    def test_out_parameter(self, q19, make_random_state, small_shape):
        rho, u = make_random_state(q19, small_shape)
        f = equilibrium(q19, rho, u)
        dst = np.empty_like(f)
        op = BGKCollision(q19, tau=0.9)
        result = op.apply(f, out=dst)
        assert result is dst


class TestRegularized:
    def test_tau_validation(self, q39):
        with pytest.raises(LatticeError):
            RegularizedBGKCollision(q39, tau=0.4)

    def test_conserves_mass_and_momentum(self, paper_lattice, make_random_state, small_shape):
        lat = paper_lattice
        rho, u = make_random_state(lat, small_shape)
        f = equilibrium(lat, rho, u)
        f += 1e-4 * np.random.default_rng(3).standard_normal(f.shape)
        rho0, u0 = macroscopic(lat, f)
        op = RegularizedBGKCollision(lat, tau=0.8)
        out = op.apply(f.copy())
        rho1, u1 = macroscopic(lat, out)
        assert np.allclose(rho1, rho0, atol=1e-12)
        assert np.allclose(rho1[None] * u1, rho0[None] * u0, atol=1e-12)

    def test_equilibrium_fixed_point(self, q39, make_random_state, small_shape):
        rho, u = make_random_state(q39, small_shape)
        feq = equilibrium(q39, rho, u)
        op = RegularizedBGKCollision(q39, tau=0.9)
        out = op.apply(feq.copy())
        assert np.allclose(out, feq, atol=1e-12)

    def test_matches_bgk_for_pure_stress_perturbation(self, q19):
        """A perturbation living entirely in H2 relaxes identically."""
        rho = np.ones((2, 2, 2))
        u = np.zeros((3, 2, 2, 2))
        feq = equilibrium(q19, rho, u)
        c = q19.velocities
        w = q19.weights
        cs2 = q19.cs2_float
        mode = w * (c[:, 0] * c[:, 1]).astype(float) / cs2**2  # w H2_xy / cs4
        f = feq + 1e-5 * mode[:, None, None, None]
        bgk = BGKCollision(q19, tau=0.8).apply(f.copy())
        reg = RegularizedBGKCollision(q19, tau=0.8).apply(f.copy())
        assert np.allclose(bgk, reg, atol=1e-12)

    def test_filters_ghost_modes(self, q19):
        """Perturbations outside the Hermite space are removed entirely."""
        rho = np.ones((2, 2, 2))
        u = np.zeros((3, 2, 2, 2))
        feq = equilibrium(q19, rho, u)
        rng = np.random.default_rng(4)
        noise = 1e-5 * rng.standard_normal(feq.shape)
        # remove mass/momentum/stress projections? simpler: regularized
        # output must lie in span{feq modes}: applying it twice with
        # tau -> equal second application (idempotent filtering).
        op = RegularizedBGKCollision(q19, tau=1e9)
        once = op.apply((feq + noise).copy())
        twice = op.apply(once.copy())
        assert np.allclose(once, twice, atol=1e-12)
