"""Smoke tests: the fast example wrappers run end-to-end and PASS."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = REPO / "examples"


def _run(script: str, *args: str, timeout: int = 180) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=env,
    )


class TestFastExamples:
    def test_quickstart(self):
        result = _run("quickstart.py", "16")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "PASS" in result.stdout
        assert "MFlup/s" in result.stdout

    def test_scaling_study(self):
        result = _run("scaling_study.py", "D3Q19")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "Strong scaling" in result.stdout
        assert "Hybrid placement" in result.stdout

    def test_deep_halo_tuning(self):
        result = _run("deep_halo_tuning.py")
        assert result.returncode == 0, result.stdout + result.stderr
        assert "max |error| = 0.00e+00" in result.stdout
        assert "chosen ghost depth" in result.stdout


class TestExampleSources:
    """The slow examples at least import and expose main()."""

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "microchannel_knudsen.py",
            "artery_flow.py",
            "deep_halo_tuning.py",
            "scaling_study.py",
            "microfluidic_clogging.py",
        ],
    )
    def test_compiles(self, script):
        source = (EXAMPLES / script).read_text()
        code = compile(source, script, "exec")
        assert code is not None
        assert "def main(" in source
