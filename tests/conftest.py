"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lattice import get_lattice


@pytest.fixture(autouse=True, scope="session")
def _isolated_kernel_cache(tmp_path_factory):
    """Point the kernel-auto verdict cache at a throwaway directory.

    Tests must neither read a developer's ~/.cache verdicts (they would
    change which kernel "auto" picks) nor write into it.
    """
    import os

    path = tmp_path_factory.mktemp("kernel-auto-cache")
    old = os.environ.get("REPRO_KERNEL_CACHE_DIR")
    os.environ["REPRO_KERNEL_CACHE_DIR"] = str(path)
    yield
    if old is None:
        os.environ.pop("REPRO_KERNEL_CACHE_DIR", None)
    else:
        os.environ["REPRO_KERNEL_CACHE_DIR"] = old


@pytest.fixture(params=["D3Q15", "D3Q19", "D3Q27", "D3Q39"])
def lattice(request):
    """Every registered lattice."""
    return get_lattice(request.param)


@pytest.fixture(params=["D3Q19", "D3Q39"])
def paper_lattice(request):
    """The two lattices the paper studies."""
    return get_lattice(request.param)


@pytest.fixture
def q19():
    return get_lattice("D3Q19")


@pytest.fixture
def q39():
    return get_lattice("D3Q39")


@pytest.fixture
def rng():
    """Deterministic RNG for random fields."""
    return np.random.default_rng(42)


@pytest.fixture
def small_shape():
    """A small anisotropic grid (catches axis mix-ups)."""
    return (6, 5, 4)


def random_state(lattice, shape, rng, amplitude=0.02):
    """A random near-equilibrium (rho, u) pair."""
    rho = 1.0 + amplitude * rng.standard_normal(shape)
    u = amplitude * rng.standard_normal((lattice.dim, *shape))
    return rho, u


@pytest.fixture
def make_random_state(rng):
    """Factory fixture for random (rho, u) fields."""

    def factory(lattice, shape, amplitude=0.02):
        return random_state(lattice, shape, rng, amplitude)

    return factory
