"""Shape tests over every reproduced artifact (the per-experiment
checks that EXPERIMENTS.md reports)."""

import pytest

from repro.experiments import available_experiments, run_experiment


@pytest.fixture(scope="module")
def results():
    return {eid: run_experiment(eid) for eid in available_experiments()}


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        assert set(available_experiments()) == {
            "table1",
            "table2",
            "fig8a",
            "fig8b",
            "fig9",
            "fig10a",
            "fig10b",
            "tables34",
            "fig11a",
            "fig11b",
        }

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig99")

    def test_results_render(self, results):
        for eid, result in results.items():
            text = result.to_text()
            assert len(text.splitlines()) >= 3, eid
            assert result.experiment_id == eid


class TestTable1(object):
    def test_lattice_structure(self, results):
        c = results["table1"].checks
        assert c["q19"] == 19 and c["q39"] == 39
        assert c["q19_isotropy"] < 6 <= c["q39_isotropy"]
        assert c["q19_k"] == 1 and c["q39_k"] == 3


class TestTable2:
    def test_within_3pct_of_paper(self, results):
        from repro.analysis.paper_reference import TABLE2, TORUS_LOWER_BOUNDS

        c = results["table2"].checks
        for (mkey, lname), (_, p_bm, _, p_peak) in TABLE2.items():
            assert c[f"{mkey}/{lname}/p_bm"] == pytest.approx(p_bm, rel=0.03)
            assert c[f"{mkey}/{lname}/p_peak"] == pytest.approx(p_peak, rel=0.01)
            assert c[f"{mkey}/{lname}/limiter"] == "bandwidth"
        for key, bound in TORUS_LOWER_BOUNDS.items():
            assert c[f"{key[0]}/{key[1]}/torus"] == pytest.approx(bound, rel=0.02)


class TestFig9:
    def test_nbc_spread_matches_paper(self, results):
        """Paper: 4.8 s ... 40 s for D3Q19 under NB-C."""
        c = results["fig9"].checks
        assert 3.0 < c["D3Q19/NB-C/min"] < 10.0
        assert 30.0 < c["D3Q19/NB-C/max"] < 55.0

    def test_gcc_compresses_to_few_seconds(self, results):
        """Paper: GC-C range ~3-5 s."""
        c = results["fig9"].checks
        assert c["D3Q19/GC-C/max"] < 10.0
        assert c["D3Q19/GC-C/max"] < 0.25 * c["D3Q19/NB-C/max"]

    def test_schedule_ordering_for_both_models(self, results):
        c = results["fig9"].checks
        for lname in ("D3Q19", "D3Q39"):
            assert (
                c[f"{lname}/NB-C/max"]
                > c[f"{lname}/NB-C & GC/max"]
                > c[f"{lname}/GC-C/max"]
            )

    def test_d3q39_costs_more_comm(self, results):
        c = results["fig9"].checks
        assert c["D3Q39/NB-C/max"] > c["D3Q19/NB-C/max"]


class TestFig10:
    def test_fig10a_small_sizes_prefer_gc1(self, results):
        c = results["fig10a"].checks
        for size in ("8k", "16k", "32k"):
            assert c[f"{size}/optimal"] == 1

    def test_fig10a_large_sizes_prefer_deep(self, results):
        c = results["fig10a"].checks
        assert c["64k/optimal"] >= 2
        assert c["133k/optimal"] >= 2

    def test_fig10a_oom_at_133k_depth4(self, results):
        """'the individual nodes ran out of memory due to the addition
        of the fourth ghost cell'."""
        c = results["fig10a"].checks
        assert c["133k/oom"] == (4,)
        for size in ("8k", "16k", "32k", "64k"):
            assert c[f"{size}/oom"] == ()

    def test_fig10b_crossover_at_large_sizes(self, results):
        c = results["fig10b"].checks
        assert c["16k/optimal"] == 1
        assert c["200k/optimal"] >= 2

    def test_fig10_normalized_shape(self, results):
        """Small systems: monotone penalty with depth; largest systems:
        depth 2 at or below 1.0."""
        series_a = results["fig10a"].series
        assert series_a["8k"][3] > series_a["8k"][1] > series_a["8k"][0]
        assert series_a["133k"][1] <= 1.0


class TestTables34:
    def test_table3_structure(self, results):
        c = results["tables34"].checks
        # paper: depth 1 up to R=16; >= 2 in the 32-66 band
        for r in (4, 8, 16):
            assert c[f"t3/{r}"] == 1
        for r in (48, 64):
            assert c[f"t3/{r}"] >= 2

    def test_table4_structure(self, results):
        c = results["tables34"].checks
        for r in (128, 256):
            assert c[f"t4/{r}"] == 1
        for r in (680, 800):
            assert c[f"t4/{r}"] >= 2


class TestFig11:
    def test_threading_helps_bgp(self, results):
        c = results["fig11a"].checks
        for lname in ("D3Q19", "D3Q39"):
            assert c[f"{lname}/t4_runtime"] < c[f"{lname}/t1_runtime"]

    def test_d3q19_hybrid_ties_vn(self, results):
        """Paper: 'approximately the same' for D3Q19."""
        c = results["fig11a"].checks
        ratio = c["D3Q19/t4_runtime"] / c["D3Q19/vn_runtime"]
        assert ratio == pytest.approx(1.0, abs=0.08)

    def test_d3q39_hybrid_beats_vn_with_depth2(self, results):
        """Paper: 'the hybrid model with 4-threads with two ghost cells
        actually outperforms the virtual node mode case'."""
        c = results["fig11a"].checks
        assert c["D3Q39/t4_runtime"] < c["D3Q39/vn_runtime"]
        assert c["D3Q39/t4_depth"] == 2

    def test_bgq_optimum_is_4_tasks_16_threads(self, results):
        """Paper: 'the optimal pairing ... is actually four tasks per
        node with 16 threads assigned ... true for both models'."""
        c = results["fig11b"].checks
        assert c["D3Q19/best"] == (4, 16)
        assert c["D3Q39/best"] == (4, 16)
