"""Tests for the torus interconnect model."""

import pytest

from repro.machine import BLUE_GENE_P, TorusTopology, torus_shape_for


class TestShapes:
    def test_covers_node_count(self):
        for n, d in ((128, 3), (512, 3), (1024, 5), (7, 3)):
            shape = torus_shape_for(n, d)
            assert len(shape) == d
            total = 1
            for s in shape:
                total *= s
            assert total >= n

    def test_invalid(self):
        with pytest.raises(ValueError):
            torus_shape_for(0, 3)


class TestTopology:
    def setup_method(self):
        self.torus = TorusTopology((4, 4, 8), BLUE_GENE_P)

    def test_node_count(self):
        assert self.torus.num_nodes == 128

    def test_every_node_has_six_neighbors(self):
        for coord in ((0, 0, 0), (3, 3, 7), (1, 2, 4)):
            assert len(self.torus.neighbors(coord)) == 6

    def test_hop_distance_wraps(self):
        assert self.torus.hop_distance((0, 0, 0), (3, 0, 0)) == 1
        assert self.torus.hop_distance((0, 0, 0), (0, 0, 4)) == 4
        assert self.torus.hop_distance((0, 0, 0), (2, 2, 4)) == 8

    def test_rank_mapping_roundtrip(self):
        coords = [self.torus.rank_to_coord(r) for r in range(128)]
        assert len(set(coords)) == 128

    def test_consecutive_ranks_adjacent(self):
        """The default mapping keeps the 1-D chain on neighboring nodes
        (the assumption behind the paper's single-hop halo bound)."""
        adjacent = sum(
            self.torus.ranks_are_adjacent(r, r + 1) for r in range(127)
        )
        # z wraps break adjacency at 1/8 of the chain transitions
        assert adjacent / 127 > 0.85

    def test_bisection_bandwidth(self):
        # longest dim 8: cut severs 2*(128/8)=32 link pairs
        assert self.torus.bisection_bandwidth == pytest.approx(32 * 0.425e9)

    def test_transfer_times(self):
        t_soft = self.torus.link_transfer_time(1_000_000, software=True)
        t_hard = self.torus.link_transfer_time(1_000_000, software=False)
        assert t_soft == pytest.approx(1e6 / 0.375e9)
        assert t_hard < t_soft

    def test_halo_transfer_single_hop(self):
        t = self.torus.halo_transfer_time(500_000)
        assert t == self.torus.link_transfer_time(500_000)

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            TorusTopology((0, 4), BLUE_GENE_P)
