"""Tests for the memory-capacity and cache models."""

import pytest

from repro.errors import OutOfMemoryModelError
from repro.lattice import get_lattice
from repro.machine import BGP_CACHE, BGQ_CACHE, BLUE_GENE_P, CacheHierarchy, CacheLevel, MemoryModel


class TestMemoryModel:
    def _model(self, lname="D3Q19"):
        lat = get_lattice(lname)
        return MemoryModel(lat, BLUE_GENE_P.memory_per_node)

    def test_slab_bytes_formula(self):
        m = self._model()
        # 2 copies x 19 vel x 8 B x (10 + 2*2*1) x 4 x 4 cells
        assert m.slab_bytes(10, 4, 4, ghost_depth=2) == 2 * 19 * 8 * 14 * 16

    def test_d3q39_halo_three_planes_per_depth(self):
        m = self._model("D3Q39")
        assert m.slab_bytes(10, 4, 4, ghost_depth=1) == 2 * 39 * 8 * 16 * 16

    def test_fits_boundary(self):
        m = self._model()
        assert m.fits(100, 32, 32, 1)
        assert not m.fits(100000, 128, 128, 1)

    def test_require_fits_raises_with_sizes(self):
        m = self._model()
        with pytest.raises(OutOfMemoryModelError, match="GB"):
            m.require_fits(100000, 128, 128, 4)

    def test_tasks_multiply_footprint(self):
        m = self._model()
        one = m.node_bytes(50, 64, 64, 1, tasks_per_node=1)
        four = m.node_bytes(50, 64, 64, 1, tasks_per_node=4)
        assert four == 4 * one

    def test_max_ghost_depth(self):
        m = self._model()
        d = m.max_ghost_depth(60, 140, 140, tasks_per_node=4)
        assert d >= 1
        assert m.fits(60, 140, 140, d, 4)
        assert not m.fits(60, 140, 140, d + 1, 4)

    def test_fig10a_oom_scenario(self):
        """The paper's 133k case: depth 3 fits, depth 4 does not
        (2048 procs, R=65 planes/proc, 140x140 cross-section)."""
        m = self._model()
        assert m.fits(65, 140, 140, 3, tasks_per_node=4)
        assert not m.fits(65, 140, 140, 4, tasks_per_node=4)


class TestCacheModel:
    def test_hit_fractions_must_sum(self):
        with pytest.raises(ValueError, match="sum"):
            BGP_CACHE.effective_bandwidth_gbs((0.5, 0.2, 0.2))

    def test_wrong_arity(self):
        with pytest.raises(ValueError):
            BGQ_CACHE.effective_bandwidth_gbs((1.0,))

    def test_all_l1_gives_l1_bandwidth(self):
        bw = BGQ_CACHE.effective_bandwidth_gbs((1.0, 0.0, 0.0, 0.0))
        assert bw == pytest.approx(820.0)

    def test_better_locality_is_faster(self):
        """The paper's §V-B counter shift: fewer DDR hits -> higher
        effective bandwidth."""
        before = (0.80, 0.05, 0.12, 0.03)
        after = (0.804, 0.05, 0.132, 0.014)
        assert BGQ_CACHE.speedup(before, after) > 1.0

    def test_custom_hierarchy(self):
        h = CacheHierarchy((CacheLevel("fast", 100.0), CacheLevel("slow", 10.0)))
        assert h.effective_bandwidth_gbs((0.5, 0.5)) == pytest.approx(
            1 / (0.5 / 100 + 0.5 / 10)
        )
