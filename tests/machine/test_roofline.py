"""Tests for the Wellein/Eq. 5 roofline — Table II must reproduce."""

import pytest

from repro.lattice import get_lattice
from repro.machine import (
    BLUE_GENE_P,
    BLUE_GENE_Q,
    FLOPS_PER_CELL,
    Limiter,
    flops_per_cell,
    hardware_efficiency_bound,
    roofline,
    torus_lower_bound,
)


class TestTableII:
    """Every cell of the paper's Table II within 3%."""

    @pytest.mark.parametrize(
        "machine,lname,p_bm,p_peak",
        [
            (BLUE_GENE_P, "D3Q19", 29.0, 76.4),
            (BLUE_GENE_Q, "D3Q19", 94.0, 1150.0),
            (BLUE_GENE_P, "D3Q39", 14.5, 71.5),
            (BLUE_GENE_Q, "D3Q39", 45.0, 1077.0),
        ],
    )
    def test_values(self, machine, lname, p_bm, p_peak):
        r = roofline(machine, get_lattice(lname))
        assert r.p_bandwidth_mflups == pytest.approx(p_bm, rel=0.03)
        assert r.p_peak_mflups == pytest.approx(p_peak, rel=0.01)

    def test_always_bandwidth_limited(self):
        """'IN ALL CASES, THE CODE IS EXTREMELY BANDWIDTH LIMITED.'"""
        for machine in (BLUE_GENE_P, BLUE_GENE_Q):
            for lname in ("D3Q19", "D3Q39"):
                r = roofline(machine, get_lattice(lname))
                assert r.limiter is Limiter.BANDWIDTH
                assert r.attainable_mflups == r.p_bandwidth_mflups


class TestSectionIIIC:
    @pytest.mark.parametrize(
        "machine,lname,bound",
        [
            (BLUE_GENE_P, "D3Q19", 11.1),
            (BLUE_GENE_Q, "D3Q19", 70.0),
            (BLUE_GENE_P, "D3Q39", 5.4),
            (BLUE_GENE_Q, "D3Q39", 34.0),
        ],
    )
    def test_torus_lower_bounds(self, machine, lname, bound):
        got = torus_lower_bound(machine, get_lattice(lname))
        assert got == pytest.approx(bound, rel=0.02)

    def test_efficiency_bounds_on_bgp(self):
        """'38% (D3Q19) and 20% (D3Q39) hardware efficiency'."""
        assert hardware_efficiency_bound(
            BLUE_GENE_P, get_lattice("D3Q19")
        ) == pytest.approx(0.38, abs=0.02)
        assert hardware_efficiency_bound(
            BLUE_GENE_P, get_lattice("D3Q39")
        ) == pytest.approx(0.20, abs=0.01)

    def test_bgq_efficiency_ceiling_lower(self):
        """The growing bandwidth/flops disparity the paper warns about."""
        for lname in ("D3Q19", "D3Q39"):
            assert hardware_efficiency_bound(
                BLUE_GENE_Q, get_lattice(lname)
            ) < hardware_efficiency_bound(BLUE_GENE_P, get_lattice(lname))


class TestFlopsPerCell:
    def test_paper_constants(self):
        assert FLOPS_PER_CELL == {"D3Q19": 178, "D3Q39": 190}
        assert flops_per_cell(get_lattice("D3Q19")) == 178
        assert flops_per_cell(get_lattice("D3Q39")) == 190

    def test_interpolation_for_other_lattices(self):
        f15 = flops_per_cell(get_lattice("D3Q15"))
        f27 = flops_per_cell(get_lattice("D3Q27"))
        assert 170 < f15 < 178
        assert 178 < f27 < 190
