"""Tests for machine specifications (paper §III-A numbers)."""

import pytest

from repro.machine import BLUE_GENE_P, BLUE_GENE_Q, available_machines, get_machine


class TestBlueGeneP:
    def test_peak_flops(self):
        # 0.85 GHz x 4 cores x 4 flops/cycle = 13.6 GFlop/s
        assert BLUE_GENE_P.peak_gflops == pytest.approx(13.6)

    def test_memory(self):
        assert BLUE_GENE_P.memory_bandwidth_gbs == 13.6
        assert BLUE_GENE_P.memory_per_node_gb == 2.0

    def test_threading(self):
        assert BLUE_GENE_P.max_threads_per_node == 4

    def test_torus(self):
        assert BLUE_GENE_P.torus_dims == 3
        # 12 unidirectional links x 425 MB/s = 5.1 GB/s aggregate
        assert BLUE_GENE_P.torus_aggregate_bandwidth == pytest.approx(5.1e9)

    def test_machine_balance(self):
        assert BLUE_GENE_P.machine_balance_bytes_per_flop == pytest.approx(1.0)


class TestBlueGeneQ:
    def test_peak_flops(self):
        # 1.6 GHz x 16 cores x 8 flops/cycle = 204.8 GFlop/s
        assert BLUE_GENE_Q.peak_gflops == pytest.approx(204.8)

    def test_memory(self):
        assert BLUE_GENE_Q.memory_bandwidth_gbs == 43.0
        assert BLUE_GENE_Q.memory_per_node_gb == 16.0

    def test_threading(self):
        assert BLUE_GENE_Q.max_threads_per_node == 64

    def test_torus_effective_aggregate(self):
        # backed out of the paper's SIII-C lower bounds: ~32 GB/s
        assert BLUE_GENE_Q.torus_aggregate_bandwidth == pytest.approx(32e9)

    def test_bandwidth_starved_relative_to_p(self):
        """The paper's conclusion: the byte/flop balance worsened."""
        assert (
            BLUE_GENE_Q.machine_balance_bytes_per_flop
            < BLUE_GENE_P.machine_balance_bytes_per_flop / 4
        )


class TestLookup:
    def test_short_names(self):
        assert get_machine("BG/P") is BLUE_GENE_P
        assert get_machine("BG/Q") is BLUE_GENE_Q

    def test_full_names(self):
        assert get_machine("Blue Gene/Q") is BLUE_GENE_Q

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_machine("Cray XT5")

    def test_available(self):
        assert available_machines() == ("BG/P", "BG/Q")
