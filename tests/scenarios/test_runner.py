"""CaseRunner: series recording, stopping criteria, checkpoint/restart."""

import numpy as np
import pytest

from repro.core import total_mass
from repro.errors import ScenarioError
from repro.scenarios import CaseRunner, CaseSpec, run_case, steady_state

FAST_TG = dict(shape=(8, 8, 4), steps=20, monitor_every=5)


class TestRun:
    def test_records_series_rows(self):
        result = CaseRunner("taylor-green", **FAST_TG).run(analyze=False)
        # initial row + one per monitor chunk
        assert result.series["step"] == [0.0, 5.0, 10.0, 15.0, 20.0]
        for name in ("total_mass", "kinetic_energy", "max_speed"):
            assert len(result.series[name]) == 5
        assert result.metrics["steps_run"] == 20

    def test_analysis_and_checks_hooks(self):
        result = run_case("taylor-green", steps=100, shape=(16, 16, 4))
        assert "decay_error" in result.metrics
        assert result.checks["decay_matches_viscous_theory"]
        assert result.passed

    def test_run_case_shortcut_matches_runner(self):
        a = run_case("taylor-green", analyze=False, **FAST_TG)
        b = CaseRunner("taylor-green", **FAST_TG).run(analyze=False)
        np.testing.assert_array_equal(a.simulation.f, b.simulation.f)

    def test_steady_state_stop(self):
        spec = CaseSpec(
            name="rest",
            title="fluid at rest never changes",
            shape=(4, 4, 4),
            steps=1000,
            monitor_every=5,
            stop_when=steady_state(lambda sim: total_mass(sim.f)),
            observables={"total_mass": lambda sim: total_mass(sim.f)},
        )
        result = CaseRunner(spec).run(analyze=False)
        # converged at the second monitor point, far before 1000 steps
        assert result.simulation.time_step == 10

    def test_stop_condition_state_not_shared_between_runs(self):
        spec = CaseSpec(
            name="rest2",
            title="t",
            shape=(4, 4, 4),
            steps=40,
            monitor_every=5,
            stop_when=steady_state(lambda sim: total_mass(sim.f)),
        )
        first = CaseRunner(spec).run(analyze=False)
        second = CaseRunner(spec).run(analyze=False)
        assert first.simulation.time_step == second.simulation.time_step == 10


class TestCheckpointRestart:
    def test_bit_identical_restart(self, tmp_path):
        path = tmp_path / "tg.npz"
        ref = CaseRunner("taylor-green", **FAST_TG).run(analyze=False)
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=10).run(
            checkpoint=path, analyze=False
        )
        resumed = CaseRunner("taylor-green", **FAST_TG).run(
            resume=path, analyze=False
        )
        assert resumed.simulation.time_step == 20
        np.testing.assert_array_equal(ref.simulation.f, resumed.simulation.f)

    def test_bit_identical_with_boundaries_and_forcing(self, tmp_path):
        """Restart rebuilds walls/forcing from the spec, bit-exactly."""
        path = tmp_path / "clog.npz"
        overrides = dict(shape=(10, 9, 9), steps=16, monitor_every=4)
        ref = CaseRunner("microfluidic-clogging", **overrides).run(analyze=False)
        CaseRunner("microfluidic-clogging", shape=(10, 9, 9), steps=8).run(
            checkpoint=path, analyze=False
        )
        resumed = CaseRunner("microfluidic-clogging", **overrides).run(
            resume=path, analyze=False
        )
        np.testing.assert_array_equal(ref.simulation.f, resumed.simulation.f)

    def test_periodic_checkpointing_writes_resumable_state(self, tmp_path):
        path = tmp_path / "periodic.npz"
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=13, monitor_every=5).run(
            checkpoint=path, checkpoint_every=5, analyze=False
        )
        resumed = CaseRunner("taylor-green", **FAST_TG).run(
            resume=path, analyze=False
        )
        assert resumed.simulation.time_step == 20

    def test_checkpoint_every_not_aliased_by_monitor_every(
        self, tmp_path, monkeypatch
    ):
        """Periodic saves fire on elapsed steps, not step-count multiples."""
        saved = []
        original = CaseRunner.save

        def recording_save(self, path, sim, series=None):
            saved.append(sim.time_step)
            return original(self, path, sim, series=series)

        monkeypatch.setattr(CaseRunner, "save", recording_save)
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=26, monitor_every=4).run(
            checkpoint=tmp_path / "c.npz", checkpoint_every=6, analyze=False
        )
        # monitor points at 4,8,...,24,26; saves once >=6 steps have
        # elapsed since the last one, plus the final save
        assert saved == [8, 16, 24, 26]

    def test_resume_restores_series_history(self, tmp_path):
        """A resumed run carries the pre-checkpoint observable rows, so
        its full series is bit-identical to an uninterrupted run's."""
        path = tmp_path / "tg.npz"
        ref = CaseRunner("taylor-green", **FAST_TG).run(analyze=False)
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=10, monitor_every=5).run(
            checkpoint=path, analyze=False
        )
        resumed = CaseRunner("taylor-green", **FAST_TG).run(
            resume=path, analyze=False
        )
        assert resumed.series == ref.series

    def test_resume_from_periodic_checkpoint_keeps_history(self, tmp_path):
        path = tmp_path / "periodic.npz"
        ref = CaseRunner("taylor-green", **FAST_TG).run(analyze=False)
        # Periodic saves at 5 and 10, final save at 13.
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=13, monitor_every=5).run(
            checkpoint=path, checkpoint_every=5, analyze=False
        )
        from repro.core.io import load_checkpoint_data

        assert load_checkpoint_data(path).time_step == 13
        resumed = CaseRunner("taylor-green", **FAST_TG).run(
            resume=path, analyze=False
        )
        assert resumed.series["step"] == [0.0, 5.0, 10.0, 13.0, 18.0, 20.0]
        for name, values in ref.series.items():
            assert values[:3] == resumed.series[name][:3]

    def test_resume_from_pre_series_checkpoint_still_works(self, tmp_path):
        """Checkpoints written before series support resume fine; the
        series just starts at the checkpoint step."""
        from repro.core.io import save_checkpoint

        path = tmp_path / "old.npz"
        runner = CaseRunner("taylor-green", shape=(8, 8, 4), steps=10)
        result = runner.run(analyze=False)
        save_checkpoint(path, result.simulation, extra={"case": "taylor-green"})
        resumed = CaseRunner("taylor-green", **FAST_TG).run(
            resume=path, analyze=False
        )
        assert resumed.series["step"] == [10.0, 15.0, 20.0]

    def test_wrong_case_rejected(self, tmp_path):
        path = tmp_path / "tg.npz"
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=5).run(
            checkpoint=path, analyze=False
        )
        with pytest.raises(ScenarioError, match="written by case"):
            CaseRunner("porous-darcy").run(resume=path, analyze=False)

    def test_checkpoint_beyond_case_steps_rejected(self, tmp_path):
        path = tmp_path / "tg.npz"
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=30).run(
            checkpoint=path, analyze=False
        )
        with pytest.raises(ScenarioError, match="beyond"):
            CaseRunner("taylor-green", **FAST_TG).run(resume=path, analyze=False)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "tg.npz"
        CaseRunner("taylor-green", shape=(8, 8, 4), steps=5).run(
            checkpoint=path, analyze=False
        )
        with pytest.raises(ScenarioError, match="shape"):
            CaseRunner("taylor-green", shape=(16, 16, 4), steps=20).run(
                resume=path, analyze=False
            )


class TestBuild:
    def test_initializes_from_spec_initial(self):
        sim, _ = CaseRunner("taylor-green", shape=(8, 8, 4)).build()
        assert sim.time_step == 0
        assert np.isfinite(sim.f).all()
        # Taylor-Green start carries kinetic energy; rest state would not
        assert np.abs(sim.f - sim.f.mean(axis=(1, 2, 3), keepdims=True)).max() > 0

    def test_default_initial_is_uniform_rest(self):
        spec = CaseSpec(name="rest3", title="t", shape=(4, 4, 4))
        sim, _ = CaseRunner(spec).build()
        rho, u = sim.macroscopic()
        np.testing.assert_allclose(rho, 1.0)
        np.testing.assert_allclose(u, 0.0, atol=1e-15)

    def test_geometry_shape_mismatch_raises(self):
        spec = CaseSpec(
            name="badgeom",
            title="t",
            shape=(4, 4, 4),
            geometry=lambda spec: np.zeros((3, 3, 3), dtype=bool),
        )
        with pytest.raises(ScenarioError, match="geometry"):
            CaseRunner(spec).build()
