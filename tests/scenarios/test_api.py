"""The ``repro.api`` facade: one code path for CLI, HTTP and library."""

import json

import pytest

from repro import api
from repro.core.io import render_response, response_envelope
from repro.errors import ScenarioError

CASE = "taylor-green"
SMALL = {"shape": (10, 10, 4)}


class TestCaseRequest:
    def test_fingerprint_matches_spec(self):
        request = api.case_request(CASE, steps=5, overrides=SMALL)
        assert request.fingerprint == request.spec.fingerprint()
        assert request.overrides["steps"] == 5
        assert request.auto_kernel is None

    def test_decoded_json_overrides_fingerprint_identically(self):
        # JSON bodies carry lists; decode_overrides retuples them so the
        # fingerprint matches what --set shape=10,10,4 produces.
        from_json = api.case_request(
            CASE, steps=5, overrides=api.decode_overrides({"shape": [10, 10, 4]})
        )
        native = api.case_request(CASE, steps=5, overrides=SMALL)
        assert from_json.fingerprint == native.fingerprint

    def test_invalid_override_raises(self):
        with pytest.raises(ScenarioError):
            api.case_request(CASE, overrides={"lattice": "D3Q999"})


class TestRunCase:
    def test_cold_then_warm_payloads_identical(self, tmp_path):
        cold = api.run_case(CASE, steps=5, overrides=SMALL, cache_dir=tmp_path)
        warm = api.run_case(CASE, steps=5, overrides=SMALL, cache_dir=tmp_path)
        assert not cold.cached and warm.cached
        assert cold.payload == warm.payload
        assert render_response("case", cold.payload) == render_response(
            "case", warm.payload
        )

    def test_warm_hit_runs_zero_steps(self, tmp_path, monkeypatch):
        api.run_case(CASE, steps=5, overrides=SMALL, cache_dir=tmp_path)
        from repro.scenarios.runner import CaseRunner

        def boom(self, **kwargs):
            raise AssertionError("a warm request must not execute")

        monkeypatch.setattr(CaseRunner, "run", boom)
        warm = api.run_case(CASE, steps=5, overrides=SMALL, cache_dir=tmp_path)
        assert warm.cached
        assert warm.result.simulation is None

    def test_cache_dir_rejects_checkpoint(self, tmp_path):
        with pytest.raises(ScenarioError, match="checkpoint"):
            api.run_case(
                CASE,
                steps=5,
                overrides=SMALL,
                cache_dir=tmp_path,
                checkpoint=str(tmp_path / "x.npz"),
            )


class TestSweepRequest:
    def test_expansion_is_aligned(self):
        request = api.sweep_request(CASE, {"tau": [0.7, 0.8]}, steps=5)
        assert len(request) == 2
        assert request.parameters == ("tau",)
        assert [v["tau"] for v in request.variants] == [0.7, 0.8]
        assert len(request.fingerprints) == len(set(request.fingerprints))

    def test_assemble_requires_every_variant_warm(self, tmp_path):
        request = api.sweep_request(
            CASE, {"tau": [0.7, 0.8]}, steps=5
        )
        assert api.assemble_sweep(request, tmp_path) is None
        api.run_case(
            CASE, steps=5, overrides={"tau": 0.7}, cache_dir=tmp_path
        )
        assert api.assemble_sweep(request, tmp_path) is None
        api.run_case(
            CASE, steps=5, overrides={"tau": 0.8}, cache_dir=tmp_path
        )
        result = api.assemble_sweep(request, tmp_path)
        assert result is not None
        assert result.passed

    def test_run_sweep_payload_matches_assembled(self, tmp_path):
        grid = {"tau": [0.7, 0.8]}
        ran = api.run_sweep(CASE, grid, steps=5, cache_dir=tmp_path)
        request = api.sweep_request(CASE, grid, steps=5)
        assembled = api.assemble_sweep(request, tmp_path)
        assert api.sweep_payload(ran) == api.sweep_payload(assembled)


class TestSweepOptionValidation:
    def test_workers_need_cache_dir(self):
        with pytest.raises(ScenarioError, match="--cache-dir"):
            api.run_sweep(CASE, {"tau": [0.7]}, workers=2)

    def test_workers_and_jobs_exclusive(self, tmp_path):
        with pytest.raises(ScenarioError, match="alternatives"):
            api.run_sweep(
                CASE, {"tau": [0.7]}, workers=2, jobs=2, cache_dir=tmp_path
            )

    def test_telemetry_needs_cache_dir(self):
        with pytest.raises(ScenarioError, match="--telemetry"):
            api.run_sweep(CASE, {"tau": [0.7]}, telemetry=True)


class TestEnvelope:
    def test_schema_versioned_and_canonical(self):
        rendered = render_response("thing", {"b": 1, "a": (1, 2)})
        assert rendered == '{"data":{"a":[1,2],"b":1},"kind":"thing","schema":1}'
        assert json.loads(rendered) == response_envelope(
            "thing", {"b": 1, "a": (1, 2)}
        )

    def test_nan_is_rejected(self):
        with pytest.raises(ValueError):
            render_response("thing", {"x": float("nan")})


class TestPredictCost:
    def test_no_calibration_returns_none(self, tmp_path):
        estimate = api.predict_cost(
            kernel="planned",
            lattice="D3Q19",
            path=tmp_path / "missing.json",
        )
        assert estimate is None
