"""Adaptive grid sampling: strict subsets, row fidelity, refinement."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import AdaptiveSampler, Sweep, SweepExecutor
from repro.scenarios.sampling import _Segment, coarse_axis_indices

GRID = {"tau": [0.55, 0.6, 0.7, 0.8, 0.95], "steps": [10, 20, 30]}
OBSERVABLE = "final_kinetic_energy"


def make_sampler(**kwargs):
    defaults = dict(observable=OBSERVABLE)
    defaults.update(kwargs)
    return AdaptiveSampler(Sweep("taylor-green", GRID), **defaults)


class TestCoarseIndices:
    def test_endpoints_always_kept(self):
        assert coarse_axis_indices(5, 2) == [0, 2, 4]
        assert coarse_axis_indices(6, 2) == [0, 2, 4, 5]
        assert coarse_axis_indices(7, 3) == [0, 3, 6]
        assert coarse_axis_indices(2, 4) == [0, 1]
        assert coarse_axis_indices(1, 2) == [0]


class TestValidation:
    def test_stride_below_2_rejected(self):
        with pytest.raises(ScenarioError, match="stride"):
            make_sampler(coarse_stride=1)

    def test_refine_fraction_range(self):
        with pytest.raises(ScenarioError, match="fraction"):
            make_sampler(refine_fraction=1.5)

    def test_jobs_positive(self):
        with pytest.raises(ScenarioError, match="jobs"):
            make_sampler(jobs=0)

    def test_unknown_observable_lists_available(self, tmp_path):
        sampler = make_sampler(observable="no-such-thing")
        with pytest.raises(ScenarioError, match="final_kinetic_energy"):
            sampler.run(analyze=False)


class TestTwoParameterAcceptance:
    """The acceptance criterion: a 2-parameter grid runs strictly fewer
    variants than the Cartesian product, and every sampled row matches
    the exhaustive sweep's row for that variant."""

    def test_strict_subset_with_matching_rows(self, tmp_path):
        sampled = make_sampler(cache_dir=tmp_path).run(analyze=False)
        assert sampled.grid_total == 15
        assert len(sampled.results) < sampled.grid_total

        exhaustive = SweepExecutor(
            Sweep("taylor-green", GRID), jobs=1
        ).run(analyze=False)
        by_fp_exhaustive = dict(
            zip(exhaustive.fingerprints, exhaustive.rows()[1])
        )
        by_fp_sampled = dict(zip(sampled.fingerprints, sampled.rows()[1]))
        assert set(by_fp_sampled) < set(by_fp_exhaustive)
        for fingerprint, row in by_fp_sampled.items():
            assert row == by_fp_exhaustive[fingerprint]

    def test_stages_cover_coarse_and_refined(self, tmp_path):
        result = make_sampler(cache_dir=tmp_path).run(analyze=False)
        assert set(result.stages) == {"coarse", "refined"}
        # coarse pass = product of subsampled axes: ceil-ish 3 x 2 = 6
        assert result.stages.count("coarse") == 6

    def test_warm_cache_executes_nothing_and_is_bit_identical(self, tmp_path):
        cold = make_sampler(cache_dir=tmp_path).run(analyze=False)
        warm = make_sampler(cache_dir=tmp_path).run(analyze=False)
        assert warm.runs_executed == 0
        assert warm.to_csv() == cold.to_csv()
        assert warm.to_table() == cold.to_table()

    def test_adaptive_over_exhaustive_cache_is_all_cached(self, tmp_path):
        SweepExecutor(
            Sweep("taylor-green", GRID), jobs=1, cache_dir=tmp_path
        ).run(analyze=False)
        result = make_sampler(cache_dir=tmp_path).run(analyze=False)
        assert result.runs_executed == 0

    def test_refine_everything_still_strict_subset(self, tmp_path):
        # refine_fraction=1.0 fills every segment, but the coarse grid
        # never revisits non-segment interior points of *other* axes.
        result = make_sampler(refine_fraction=1.0, cache_dir=tmp_path).run(
            analyze=False
        )
        assert len(result.results) < result.grid_total


class TestRefinementTargeting:
    def test_fastest_segments_selected_deterministically(self):
        sampler = make_sampler(refine_fraction=0.5)
        # two refinable segments along axis 0 (5 values, stride 2):
        # [0,2] and [2,4], at each of axis 1's two coarse points; axis 1
        # itself ([0,1]) has no skipped interior
        coarse_axes = [[0, 2, 4], [0, 1]]
        segments = sampler._segments(coarse_axes)
        assert len(segments) == 4
        assert all(s.axis == 0 for s in segments)

        import itertools

        flat = {
            coord: i
            for i, coord in enumerate(itertools.product(range(5), range(2)))
        }
        # observable jumps only between axis-0 indices 2 and 4 at axis-1=0
        values = {flat[c]: 0.0 for c in flat}
        values[flat[(4, 0)]] = 100.0
        chosen = sampler._fastest(segments, values, flat)
        assert len(chosen) == 2  # ceil(0.5 * 4)
        assert chosen[0] == _Segment(axis=0, lo=2, hi=4, fixed=(0,))
        # runner-up rank is deterministic: ties broken by coordinates
        assert chosen[1] == _Segment(axis=0, lo=0, hi=2, fixed=(0,))

    def test_nan_delta_refines_first(self):
        sampler = make_sampler(refine_fraction=0.15)
        coarse_axes = [[0, 2, 4], [0, 2]]
        segments = sampler._segments(coarse_axes)
        assert len(segments) == 7  # 2x2 along axis 0 + 1x3 along axis 1
        import itertools

        flat = {
            coord: i
            for i, coord in enumerate(itertools.product(range(5), range(3)))
        }
        values = {flat[c]: 1.0 for c in flat}
        values[flat[(2, 2)]] = float("nan")  # instability inside the grid
        chosen = sampler._fastest(segments, values, flat)
        assert len(chosen) == 2  # ceil(0.15 * 7)
        for segment in chosen:  # only segments touching the NaN win
            endpoints = (
                segment.coordinate(segment.lo),
                segment.coordinate(segment.hi),
            )
            assert (2, 2) in endpoints

    def test_zero_refine_fraction_runs_coarse_only(self, tmp_path):
        result = make_sampler(refine_fraction=0.0, cache_dir=tmp_path).run(
            analyze=False
        )
        assert set(result.stages) == {"coarse"}
        assert len(result.results) == 6
