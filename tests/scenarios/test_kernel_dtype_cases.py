"""Kernel/dtype selection through the scenario layer.

The acceptance-level dtype equivalence: float32 runs of the two
analytic validation cases (taylor-green, poiseuille) agree with their
float64 runs within order-aware tolerances, and both pass their own
physics checks; kernel choice is an override/sweep axis like any other.
"""

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.scenarios import CaseSpec, Sweep, get_case, run_case


class TestSpecValidation:
    def test_kernel_accepted(self):
        spec = get_case("taylor-green").with_overrides(kernel="planned")
        spec.validate()
        assert spec.kernel == "planned"

    def test_unknown_kernel_rejected(self):
        spec = get_case("taylor-green").with_overrides(kernel="simd")
        with pytest.raises(ScenarioError, match="unknown kernel"):
            spec.validate()

    def test_auto_kernel_rejected_in_specs(self):
        """'auto' is per-host timing-dependent; a fingerprinted spec
        must declare a deterministic kernel (Simulation(kernel='auto')
        remains available on the driver)."""
        spec = get_case("taylor-green").with_overrides(kernel="auto")
        with pytest.raises(ScenarioError, match="timing-dependent"):
            spec.validate()

    def test_bad_dtype_rejected(self):
        spec = get_case("taylor-green").with_overrides(dtype="float16")
        with pytest.raises(ScenarioError, match="dtype"):
            spec.validate()

    def test_kernel_with_collision_factory_rejected(self):
        base = get_case("microchannel-knudsen")  # regularized collision
        assert base.collision is not None
        spec = base.with_overrides(kernel="planned")
        with pytest.raises(ScenarioError, match="mutually exclusive"):
            spec.validate()

    def test_fingerprints_distinguish_kernel_and_dtype(self):
        base = get_case("taylor-green")
        prints = {
            base.fingerprint(),
            base.with_overrides(kernel="planned").fingerprint(),
            base.with_overrides(dtype="float32").fingerprint(),
            base.with_overrides(kernel="planned", dtype="float32").fingerprint(),
        }
        assert len(prints) == 4

    def test_defaults_are_backward_compatible(self):
        spec = CaseSpec(name="x", title="x")
        assert spec.kernel is None
        assert spec.dtype == "float64"


class TestDtypeEquivalence:
    def test_taylor_green_float32_tracks_float64(self):
        r64 = run_case("taylor-green", steps=100)
        r32 = run_case("taylor-green", steps=100, dtype="float32")
        assert r32.passed, r32.checks
        assert r64.passed, r64.checks
        # Order-aware tolerance: the decay norm is a ratio of kinetic
        # energies ~u0^2 (1e-6), so float32 rounding (eps ~ 1.2e-7)
        # shows up at the 1e-3 relative level, far inside the 10%
        # physics tolerance.
        assert r32.metrics["decay_measured"] == pytest.approx(
            r64.metrics["decay_measured"], rel=1e-3
        )

    def test_poiseuille_float32_tracks_float64(self):
        r64 = run_case("poiseuille-channel")
        r32 = run_case("poiseuille-channel", dtype="float32")
        assert r32.passed, r32.checks
        assert r64.passed, r64.checks
        assert r32.metrics["peak_velocity"] == pytest.approx(
            r64.metrics["peak_velocity"], rel=5e-3
        )

    def test_planned_kernel_passes_case_checks(self):
        result = run_case(
            "taylor-green", steps=100, kernel="planned", dtype="float32"
        )
        assert result.passed, result.checks
        assert result.spec.kernel == "planned"


class TestKernelSweeps:
    def test_sweep_over_kernels_agrees(self):
        sweep = Sweep(
            "taylor-green", {"kernel": ["roll", "fused-gather", "planned"]},
            steps=20,
        )
        result = sweep.run()
        assert result.passed
        finals = [r.final("kinetic_energy") for r in result.results]
        assert np.allclose(finals, finals[0], rtol=1e-12)

    def test_fixed_overrides_reach_every_variant(self):
        sweep = Sweep(
            "taylor-green",
            {"tau": [0.7, 0.8]},
            steps=10,
            overrides={"kernel": "planned", "dtype": "float32"},
        )
        for spec in sweep.specs():
            assert spec.kernel == "planned"
            assert spec.dtype == "float32"
        # grid values win on collision with fixed overrides
        sweep2 = Sweep(
            "taylor-green",
            {"kernel": ["roll", "planned"]},
            steps=10,
            overrides={"kernel": "fused-gather"},
        )
        assert [s.kernel for s in sweep2.specs()] == ["roll", "planned"]

    def test_kernel_dtype_sweep_is_cacheable(self, tmp_path):
        grid = {"kernel": ["roll", "planned"], "dtype": ["float32", "float64"]}
        cold = Sweep("taylor-green", grid, steps=10).run(
            cache_dir=tmp_path / "cache"
        )
        warm = Sweep("taylor-green", grid, steps=10).run(
            cache_dir=tmp_path / "cache"
        )
        assert cold.runs_executed == 4
        assert warm.runs_executed == 0
        assert warm.to_csv() == cold.to_csv()


class TestDistributedCases:
    """The two parallel cases ride the spec's kernel/dtype selection
    end-to-end into DistributedSimulation."""

    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            {"kernel": "planned", "dtype": "float32"},
        ],
        ids=["legacy-float64", "planned-float32"],
    )
    def test_deep_halo_tuning(self, overrides):
        result = run_case("deep-halo-tuning", **overrides)
        assert result.passed, result.checks
        # the functional-equivalence metric is dtype-tolerance bounded
        tol = 1e-13 if result.spec.dtype == "float64" else 2e-5
        assert result.metrics["halo_error_depth2"] < tol

    def test_scaling_study_distributed_metrics(self):
        result = run_case(
            "scaling-study", steps=20, kernel="planned", dtype="float32"
        )
        assert result.passed, result.checks
        assert result.metrics["distributed_gather_error"] < 2e-5
        assert result.metrics["distributed_comm_bytes"] > 0
        assert result.checks["distributed_matches_single_domain"]

    def test_scaling_study_float32_halves_comm_bytes(self):
        f64 = run_case("scaling-study", steps=10)
        f32 = run_case("scaling-study", steps=10, dtype="float32")
        assert (
            f64.metrics["distributed_comm_bytes"]
            == 2 * f32.metrics["distributed_comm_bytes"]
        )

    def test_distributed_mflups_stripped_from_sweep_payloads(self, tmp_path):
        """Measured slab throughput is wall-clock, so the executor must
        drop it (like `mflups`) or sweep tables lose byte-identity
        across --jobs and cache states."""
        from repro.scenarios.executor import (
            NONDETERMINISTIC_METRICS,
            SweepExecutor,
        )

        assert "distributed_mflups" in NONDETERMINISTIC_METRICS
        sweep = Sweep("scaling-study", {"dtype": ["float32"]}, steps=5)
        result = SweepExecutor(sweep, cache_dir=tmp_path / "c").run()
        header = result.to_csv().splitlines()[0]
        assert "distributed_mflups" not in header
        assert "distributed_comm_bytes" in header
