"""Distributed sweep scheduler: leases, determinism, crash recovery."""

import multiprocessing
import time

import pytest

from repro.core.io import ClaimRecord, read_claim, write_claim
from repro.errors import ScenarioError
from repro.scenarios import (
    ResultCache,
    Sweep,
    SweepExecutor,
    SweepManifest,
    SweepScheduler,
    WorkQueue,
    get_case,
    run_worker,
)
from repro.scenarios.executor import SweepPlan
from repro.scenarios.scheduler import LeaseBoard

TAUS = [0.55, 0.7, 0.8, 0.95]


def make_sweep(taus=TAUS):
    return Sweep(
        "taylor-green", {"tau": list(taus), "shape": [(8, 8, 4)]}, steps=10
    )


def cache_bytes(root):
    reserved = {"manifest.json", "queue.json"}
    return {
        p.name: p.read_bytes()
        for p in sorted(root.glob("*.json"))
        if p.name not in reserved
    }


class TestLeaseBoard:
    def test_acquire_is_exclusive(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        assert a.acquire("fp1")
        assert not b.acquire("fp1")
        assert b.acquire("fp2")  # other variants stay claimable

    def test_release_frees_only_own_lease(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a")
        b = LeaseBoard(tmp_path, owner="b")
        assert a.acquire("fp")
        assert not b.release("fp")  # not b's to release
        assert a.release("fp")
        assert b.acquire("fp")

    def test_live_lease_cannot_be_reclaimed(self, tmp_path):
        a = LeaseBoard(tmp_path, owner="a", ttl=3600)
        b = LeaseBoard(tmp_path, owner="b", ttl=3600)
        assert a.acquire("fp")
        assert not b.reclaim("fp")
        assert b.holder("fp").owner == "a"

    def test_restarted_worker_reclaims_its_own_stale_lease(self, tmp_path):
        """A worker restarted with the same explicit --worker-id must
        recover its crashed predecessor's lease, not deadlock on it."""
        board = LeaseBoard(tmp_path, owner="w1")
        dead_previous = ClaimRecord(
            owner="w1",  # same id, earlier incarnation
            resource="fp",
            host="elsewhere",
            pid=1,
            acquired_at=time.time() - 100,
            expires_at=time.time() - 50,
        )
        assert write_claim(board.path("fp"), dead_previous)
        assert not board.acquire("fp")  # O_EXCL: file still there
        assert board.reclaim("fp")
        assert board.acquire("fp")

    def test_heartbeat_keeps_slow_variant_lease_live(self, tmp_path):
        from repro.scenarios.workers import lease_heartbeat

        board = LeaseBoard(tmp_path, owner="slow", ttl=0.4)
        peer = LeaseBoard(tmp_path, owner="peer", ttl=0.4)
        assert board.acquire("fp")
        with lease_heartbeat(board, "fp"):
            time.sleep(1.0)  # well past the original expiry
            record = peer.holder("fp")
            assert record is not None and not peer.stale(record)
            assert not peer.reclaim("fp")
        assert board.release("fp")

    def test_expired_lease_is_reclaimed(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="b")
        stale = ClaimRecord(
            owner="dead",
            resource="fp",
            host="elsewhere",
            pid=1,
            acquired_at=time.time() - 100,
            expires_at=time.time() - 50,
        )
        assert write_claim(board.path("fp"), stale)
        assert board.reclaim("fp")
        assert board.acquire("fp")
        assert board.holder("fp").owner == "b"

    def test_dead_same_host_pid_is_stale_before_expiry(self, tmp_path):
        child = multiprocessing.Process(target=lambda: None)
        child.start()
        child.join()  # pid now dead, almost surely not yet recycled
        board = LeaseBoard(tmp_path, owner="b", ttl=3600)
        record = ClaimRecord(
            owner="crashed",
            resource="fp",
            host=board.host,
            pid=child.pid,
            acquired_at=time.time(),
            expires_at=time.time() + 3600,
        )
        assert write_claim(board.path("fp"), record)
        assert board.stale(record)
        assert board.reclaim("fp")

    def test_renew_extends_expiry(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a", ttl=60)
        assert board.acquire("fp")
        before = board.holder("fp").expires_at
        time.sleep(0.01)
        assert board.renew("fp")
        assert board.holder("fp").expires_at > before
        other = LeaseBoard(tmp_path, owner="b", ttl=60)
        assert not other.renew("fp")  # not the owner

    def test_active_lists_live_leases_only(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="a")
        assert board.acquire("live")
        stale = ClaimRecord(
            owner="dead",
            resource="gone",
            host="elsewhere",
            pid=1,
            acquired_at=0.0,
            expires_at=1.0,
        )
        write_claim(board.path("gone"), stale)
        assert set(board.active()) == {"live"}

    def test_break_claim_races_have_one_winner(self, tmp_path):
        board = LeaseBoard(tmp_path, owner="x")
        stale = ClaimRecord(
            owner="dead", resource="fp", host="h", pid=1,
            acquired_at=0.0, expires_at=1.0,
        )
        write_claim(board.path("fp"), stale)
        from repro.core.io import break_claim

        first = break_claim(board.path("fp"))
        second = break_claim(board.path("fp"))
        assert first and not second
        assert read_claim(board.path("fp")) is None


class TestWorkQueue:
    def test_publish_load_roundtrip_preserves_fingerprints(self, tmp_path):
        plan = SweepPlan.of(make_sweep())
        WorkQueue.publish(tmp_path, plan, analyze=False)
        queue = WorkQueue.load(tmp_path)
        assert queue.case == "taylor-green"
        assert [i.fingerprint for i in queue.items] == plan.fingerprints
        # tuple-valued overrides survive the JSON round-trip
        assert queue.items[0].overrides["shape"] == (8, 8, 4)
        # and the worker-side task agrees with the scheduler's
        assert queue.items[0].task("taylor-green", False) == plan.task(0, False)

    def test_load_without_publish_errors(self, tmp_path):
        with pytest.raises(ScenarioError, match="no published sweep"):
            WorkQueue.load(tmp_path)

    def test_corrupt_queue_errors(self, tmp_path):
        (tmp_path / "queue.json").write_text("{not json")
        with pytest.raises(ScenarioError, match="corrupt work queue"):
            WorkQueue.load(tmp_path)

    def test_unregistered_case_rejected(self, tmp_path):
        import dataclasses

        spec = dataclasses.replace(get_case("taylor-green"), name="tg-local")
        plan = SweepPlan.of(Sweep(spec, {"tau": [0.6, 0.8]}, steps=10))
        with pytest.raises(ScenarioError, match="registered case"):
            WorkQueue.publish(tmp_path, plan, analyze=False)


class TestDistributedDeterminism:
    def test_workers1_workers4_and_warm_bit_identical(self, tmp_path):
        """The headline guarantee extended to distributed execution:
        serial executor, 1 worker, 4 workers and a warm replay emit
        the same tables and the same cache bytes."""
        serial = SweepExecutor(
            make_sweep(), jobs=1, cache_dir=tmp_path / "serial"
        ).run(analyze=True)
        one = SweepScheduler(make_sweep(), tmp_path / "w1", workers=1).run()
        four = SweepScheduler(make_sweep(), tmp_path / "w4", workers=4).run()
        warm = SweepScheduler(make_sweep(), tmp_path / "w4", workers=4).run()

        assert serial.to_table() == one.to_table() == four.to_table()
        assert serial.to_csv() == one.to_csv() == four.to_csv() == warm.to_csv()
        assert (
            cache_bytes(tmp_path / "serial")
            == cache_bytes(tmp_path / "w1")
            == cache_bytes(tmp_path / "w4")
        )
        assert warm.runs_executed == 0
        assert all(p == "cached" for p in warm.provenance)

    def test_worker_provenance_attributes_completions(self, tmp_path):
        result = SweepScheduler(make_sweep(), tmp_path, workers=2).run()
        assert all(p.startswith("worker:w") for p in result.provenance)
        assert result.runs_executed == len(TAUS)
        manifest = SweepManifest.load(tmp_path)
        assert sorted(manifest.completed) == sorted(result.fingerprints)
        assert set(manifest.workers) == set(result.fingerprints)

    def test_scheduler_without_workers_runs_inline(self, tmp_path):
        result = SweepScheduler(make_sweep(TAUS[:2]), tmp_path, workers=0).run()
        assert result.provenance == ["run", "run"]
        assert result.to_table() == SweepExecutor(
            make_sweep(TAUS[:2]), jobs=1
        ).run().to_table()

    def test_invalid_workers_rejected(self, tmp_path):
        with pytest.raises(ScenarioError, match="workers"):
            SweepScheduler(make_sweep(), tmp_path, workers=-1)


class TestWorkerLoop:
    def publish(self, root, sweep=None, analyze=True):
        scheduler = SweepScheduler(sweep or make_sweep(), root, workers=0,
                                   analyze=analyze)
        return scheduler, scheduler.publish()[0]

    def test_single_worker_drains_the_queue(self, tmp_path):
        scheduler, plan = self.publish(tmp_path)
        report = run_worker(tmp_path, worker_id="solo")
        assert sorted(report.completed) == sorted(plan.fingerprints)
        assert not report.reclaimed
        # a second worker finds nothing to do
        again = run_worker(tmp_path, worker_id="late")
        assert again.completed == []
        assert again.already_cached == len(plan.fingerprints)

    def test_max_variants_stops_early(self, tmp_path):
        scheduler, plan = self.publish(tmp_path)
        report = run_worker(tmp_path, worker_id="partial", max_variants=2)
        assert len(report.completed) == 2
        assert report.already_cached == 0
        finisher = run_worker(tmp_path, worker_id="finisher", max_variants=1)
        assert len(finisher.completed) == 1
        # the early return still reports the peer's entries as cached
        assert finisher.already_cached == 2

    def test_killed_worker_is_reclaimed_and_table_unchanged(self, tmp_path):
        """The acceptance scenario: a worker dies mid-variant leaving a
        lease and no cache entry; a peer reclaims the stale lease, runs
        the variant, and the final table matches an uninterrupted run
        byte for byte."""
        scheduler, plan = self.publish(tmp_path)
        # Complete all but the last variant.
        run_worker(tmp_path, worker_id="early", max_variants=len(plan) - 1)
        victim = plan.fingerprints[-1]
        board = LeaseBoard(tmp_path, owner="observer")
        crashed = ClaimRecord(
            owner="killed-mid-variant",
            resource=victim,
            host="gone-host",
            pid=1,
            acquired_at=time.time() - 120,
            expires_at=time.time() - 60,  # TTL long expired
        )
        assert write_claim(board.path(victim), crashed)
        assert ResultCache(tmp_path).get(victim) is None  # died before commit

        rescuer = run_worker(tmp_path, worker_id="rescuer")
        assert rescuer.reclaimed == [victim]
        assert rescuer.completed == [victim]

        merged = scheduler.collect(plan)
        reference = SweepExecutor(make_sweep(), jobs=1).run()
        assert merged.to_table() == reference.to_table()
        assert merged.to_csv() == reference.to_csv()

    def test_live_peer_lease_is_respected(self, tmp_path):
        scheduler, plan = self.publish(tmp_path)
        board = LeaseBoard(tmp_path, owner="busy-peer", ttl=3600)
        held = plan.fingerprints[0]
        assert board.acquire(held)
        report = run_worker(tmp_path, worker_id="polite")
        assert held not in report.completed
        assert len(report.completed) == len(plan.fingerprints) - 1
        assert board.holder(held).owner == "busy-peer"

    def test_worker_without_published_sweep_errors(self, tmp_path):
        with pytest.raises(ScenarioError, match="no published sweep"):
            run_worker(tmp_path)

    def test_analyze_mode_recorded_in_queue(self, tmp_path):
        self.publish(tmp_path, analyze=False)
        run_worker(tmp_path, worker_id="smoke")
        entry = ResultCache(tmp_path).get(SweepPlan.of(make_sweep()).fingerprints[0])
        assert entry["analyze"] is False


class TestCostAwarePacking:
    """Publishers with a fitted calibration stamp predicted costs and
    workers claim longest-first; everything else stays bit-identical."""

    @staticmethod
    def ladder_sweep():
        # Costs genuinely differ across these variants (D3Q39 roll is
        # ~8x the work of D3Q19 planned); tau alone would tie them all.
        return Sweep(
            "taylor-green",
            {"lattice": ["D3Q19", "D3Q39"], "kernel": ["roll", "planned"]},
            steps=5,
        )

    @pytest.fixture
    def calibrated(self, tmp_path, monkeypatch):
        from pathlib import Path

        from repro.perf.model import fit, save_calibration

        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path / "calib"))
        monkeypatch.delenv("REPRO_NO_PERF_MODEL", raising=False)
        repo = Path(__file__).resolve().parents[2]
        save_calibration(fit([repo / f"BENCH_PR{n}.json" for n in (3, 4, 5)]))

    def test_publish_stamps_costs_and_orders_claims_lpt(
        self, tmp_path, calibrated
    ):
        scheduler = SweepScheduler(
            self.ladder_sweep(), tmp_path / "cache", workers=0
        )
        _, queue = scheduler.publish()
        costs = [item.cost for item in queue.items]
        assert all(c is not None and c > 0 for c in costs)
        order = queue.claim_order()
        assert [i.cost for i in order] == sorted(costs, reverse=True)
        # D3Q39 roll (the most expensive cell in the history) goes first.
        assert order[0].overrides["lattice"] == "D3Q39"
        assert order[0].overrides["kernel"] == "roll"
        # The stamped costs survive the queue.json round trip.
        reloaded = WorkQueue.load(tmp_path / "cache")
        assert [i.cost for i in reloaded.items] == costs

    def test_without_calibration_claims_stay_grid_order(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path / "nocalib"))
        scheduler = SweepScheduler(
            self.ladder_sweep(), tmp_path / "cache", workers=0
        )
        _, queue = scheduler.publish()
        assert all(item.cost is None for item in queue.items)
        assert queue.claim_order() == queue.items

    def test_any_uncosted_item_disables_the_reordering(self, tmp_path):
        plan = SweepPlan.of(self.ladder_sweep())
        queue = WorkQueue.publish(
            tmp_path, plan, analyze=True, costs=[9.0, None, 1.0, 2.0]
        )
        assert queue.claim_order() == queue.items

    def test_misaligned_costs_rejected(self, tmp_path):
        plan = SweepPlan.of(self.ladder_sweep())
        with pytest.raises(ScenarioError, match="align"):
            WorkQueue.publish(tmp_path, plan, analyze=True, costs=[1.0])

    def test_costed_run_table_matches_uncosted_reference(
        self, tmp_path, calibrated
    ):
        sweep = self.ladder_sweep()
        packed = SweepScheduler(sweep, tmp_path / "cache", workers=1).run()
        reference = SweepExecutor(sweep, jobs=1).run()
        assert packed.to_table() == reference.to_table()
        assert packed.to_csv() == reference.to_csv()
