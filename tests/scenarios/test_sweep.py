"""Sweep expansion and comparison-table rendering."""

import pytest

from repro.scenarios import CaseResult, CaseSpec, Sweep, SweepResult, get_case


class TestExpansion:
    def test_two_point_two_axis_grid(self):
        sweep = Sweep(
            "taylor-green", {"tau": [0.6, 0.8], "lattice": ["D3Q19", "D3Q27"]}
        )
        variants = sweep.expand()
        assert variants == [
            {"tau": 0.6, "lattice": "D3Q19"},
            {"tau": 0.6, "lattice": "D3Q27"},
            {"tau": 0.8, "lattice": "D3Q19"},
            {"tau": 0.8, "lattice": "D3Q27"},
        ]

    def test_specs_carry_field_overrides(self):
        sweep = Sweep("taylor-green", {"tau": [0.6, 0.8]}, steps=7)
        specs = sweep.specs()
        assert [s.tau for s in specs] == [0.6, 0.8]
        assert all(s.steps == 7 for s in specs)
        assert get_case("taylor-green").steps != 7  # base spec untouched

    def test_param_knobs_routed_into_params(self):
        sweep = Sweep("microchannel-knudsen", {"kn": [0.05, 0.1]})
        specs = sweep.specs()
        assert [s.params["kn"] for s in specs] == [0.05, 0.1]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            Sweep("taylor-green", {})
        with pytest.raises(ValueError):
            Sweep("taylor-green", {"tau": []})


class TestRun:
    def test_comparison_table(self):
        sweep = Sweep(
            "taylor-green",
            {"tau": [0.6, 0.8], "shape": [(8, 8, 4)]},
            steps=10,
        )
        result = sweep.run(analyze=False)
        assert len(result.results) == 2
        table = result.to_table()
        assert "tau" in table and "0.6" in table and "0.8" in table
        assert "final_kinetic_energy" in table
        csv = result.to_csv()
        assert csv.splitlines()[0].startswith("tau,shape")

    def test_analysis_metrics_in_table(self):
        result = Sweep("taylor-green", {"tau": [0.7]}, steps=40).run()
        assert "decay_error" in result.to_table()
        assert result.passed


class TestColumnOrdering:
    """Regression: column order must not depend on result iteration
    order — cached results can arrive in any order."""

    @staticmethod
    def _lean_result(metrics, series):
        spec = CaseSpec(name="colorder", title="t", shape=(4, 4, 4))
        return CaseResult(spec, None, metrics=metrics, series=series)

    def _sweep_result(self, results, variants):
        return SweepResult(
            case="colorder",
            parameters=("tau",),
            variants=variants,
            results=results,
        )

    def test_columns_independent_of_result_order(self):
        a = self._lean_result(
            {"steps_run": 5, "alpha": 1.0},
            {"step": [0.0], "kinetic_energy": [1.0]},
        )
        b = self._lean_result(
            {"steps_run": 5, "beta": 2.0, "alpha": 3.0, "mflups": 1.0},
            {"step": [0.0], "mass": [1.0], "kinetic_energy": [2.0]},
        )
        variants = [{"tau": 0.6}, {"tau": 0.7}]
        forward = self._sweep_result([a, b], variants)
        backward = self._sweep_result([b, a], list(reversed(variants)))
        assert forward._columns() == backward._columns()
        # always-present metrics lead; the rest is sorted, then finals
        assert forward._columns() == [
            "steps_run",
            "mflups",
            "alpha",
            "beta",
            "final_kinetic_energy",
            "final_mass",
        ]

    def test_rows_follow_each_results_own_values(self):
        a = self._lean_result({"steps_run": 5, "alpha": 1.0}, {"step": [0.0]})
        b = self._lean_result({"steps_run": 5, "beta": 2.0}, {"step": [0.0]})
        headers, rows = self._sweep_result(
            [a, b], [{"tau": 0.6}, {"tau": 0.7}]
        ).rows()
        alpha_col = headers.index("alpha")
        beta_col = headers.index("beta")
        assert rows[0][alpha_col] == "1" and rows[0][beta_col] == "-"
        assert rows[1][alpha_col] == "-" and rows[1][beta_col] == "2"
