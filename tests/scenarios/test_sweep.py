"""Sweep expansion and comparison-table rendering."""

import pytest

from repro.scenarios import Sweep, get_case


class TestExpansion:
    def test_two_point_two_axis_grid(self):
        sweep = Sweep(
            "taylor-green", {"tau": [0.6, 0.8], "lattice": ["D3Q19", "D3Q27"]}
        )
        variants = sweep.expand()
        assert variants == [
            {"tau": 0.6, "lattice": "D3Q19"},
            {"tau": 0.6, "lattice": "D3Q27"},
            {"tau": 0.8, "lattice": "D3Q19"},
            {"tau": 0.8, "lattice": "D3Q27"},
        ]

    def test_specs_carry_field_overrides(self):
        sweep = Sweep("taylor-green", {"tau": [0.6, 0.8]}, steps=7)
        specs = sweep.specs()
        assert [s.tau for s in specs] == [0.6, 0.8]
        assert all(s.steps == 7 for s in specs)
        assert get_case("taylor-green").steps != 7  # base spec untouched

    def test_param_knobs_routed_into_params(self):
        sweep = Sweep("microchannel-knudsen", {"kn": [0.05, 0.1]})
        specs = sweep.specs()
        assert [s.params["kn"] for s in specs] == [0.05, 0.1]

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            Sweep("taylor-green", {})
        with pytest.raises(ValueError):
            Sweep("taylor-green", {"tau": []})


class TestRun:
    def test_comparison_table(self):
        sweep = Sweep(
            "taylor-green",
            {"tau": [0.6, 0.8], "shape": [(8, 8, 4)]},
            steps=10,
        )
        result = sweep.run(analyze=False)
        assert len(result.results) == 2
        table = result.to_table()
        assert "tau" in table and "0.6" in table and "0.8" in table
        assert "final_kinetic_energy" in table
        csv = result.to_csv()
        assert csv.splitlines()[0].startswith("tau,shape")

    def test_analysis_metrics_in_table(self):
        result = Sweep("taylor-green", {"tau": [0.7]}, steps=40).run()
        assert "decay_error" in result.to_table()
        assert result.passed
