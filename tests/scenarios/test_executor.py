"""SweepExecutor: parallel determinism, interruption, exact run counts."""

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    ResultCache,
    Sweep,
    SweepExecutor,
    SweepManifest,
    get_case,
    steady_state,
)
from repro.scenarios import executor as executor_module

TAUS = [0.55, 0.7, 0.8, 0.95]


def make_sweep(taus=TAUS):
    return Sweep(
        "taylor-green", {"tau": list(taus), "shape": [(8, 8, 4)]}, steps=10
    )


class TestDeterminism:
    def test_jobs1_and_jobs4_bit_identical(self, tmp_path):
        """The headline guarantee: sharding across 4 processes changes
        nothing — same tables, same cache keys, same cache bytes."""
        serial = SweepExecutor(
            make_sweep(), jobs=1, cache_dir=tmp_path / "serial"
        ).run(analyze=False)
        parallel = SweepExecutor(
            make_sweep(), jobs=4, cache_dir=tmp_path / "parallel"
        ).run(analyze=False)

        assert serial.to_table() == parallel.to_table()
        assert serial.to_csv() == parallel.to_csv()
        assert serial.fingerprints == parallel.fingerprints

        serial_keys = ResultCache(tmp_path / "serial").keys()
        assert serial_keys == ResultCache(tmp_path / "parallel").keys()
        assert len(serial_keys) == len(TAUS)
        for key in serial_keys:
            assert (tmp_path / "serial" / f"{key}.json").read_bytes() == (
                tmp_path / "parallel" / f"{key}.json"
            ).read_bytes()

    def test_uncached_parallel_matches_serial(self, tmp_path):
        serial = SweepExecutor(make_sweep(TAUS[:2]), jobs=1).run(analyze=False)
        parallel = SweepExecutor(make_sweep(TAUS[:2]), jobs=2).run(analyze=False)
        assert serial.to_table() == parallel.to_table()
        for a, b in zip(serial.results, parallel.results):
            assert a.series == b.series
            assert a.metrics == b.metrics

    def test_timing_metrics_stripped_from_payloads(self, tmp_path):
        result = SweepExecutor(
            make_sweep(TAUS[:2]), jobs=1, cache_dir=tmp_path
        ).run(analyze=False)
        for case_result in result.results:
            assert "mflups" not in case_result.metrics
            assert case_result.metrics["steps_run"] == 10


class TestInterruptionAndResume:
    def test_interrupted_after_2_resumes_with_exactly_2_runs(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: a 4-variant sweep dies after 2
        variants; the resumed sweep executes exactly the missing 2."""
        real = executor_module._execute_variant
        calls = []

        def crashing(task):
            if len(calls) == 2:
                raise RuntimeError("simulated crash")
            calls.append(task.fingerprint)
            return real(task)

        monkeypatch.setattr(executor_module, "_execute_variant", crashing)
        with pytest.raises(RuntimeError, match="simulated crash"):
            SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
                analyze=False
            )
        assert len(ResultCache(tmp_path).keys()) == 2
        manifest = SweepManifest.load(tmp_path)
        assert sorted(manifest.completed) == sorted(calls)
        assert len(manifest.missing()) == 2

        executed = []

        def counting(task):
            executed.append(task.fingerprint)
            return real(task)

        monkeypatch.setattr(executor_module, "_execute_variant", counting)
        result = SweepExecutor(
            make_sweep(), jobs=1, cache_dir=tmp_path, resume=True
        ).run(analyze=False)
        assert len(executed) == 2
        assert sorted(executed) == sorted(manifest.missing())
        assert result.provenance.count("cached") == 2
        assert result.provenance.count("run") == 2
        assert result.runs_executed == 2
        assert SweepManifest.load(tmp_path).complete

    def test_resumed_table_matches_uninterrupted_run(self, tmp_path):
        uninterrupted = SweepExecutor(make_sweep(), jobs=1).run(analyze=False)
        # "Interrupt" by completing only the first two variants.
        SweepExecutor(make_sweep(TAUS[:2]), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        resumed = SweepExecutor(make_sweep(), jobs=2, cache_dir=tmp_path).run(
            analyze=False
        )
        assert resumed.runs_executed == 2
        assert resumed.provenance == ["cached", "cached", "run", "run"]
        assert resumed.to_table() == uninterrupted.to_table()

    def test_resume_without_manifest_errors(self, tmp_path):
        with pytest.raises(ScenarioError, match="nothing to resume"):
            SweepExecutor(
                make_sweep(), jobs=1, cache_dir=tmp_path, resume=True
            ).run(analyze=False)

    def test_resume_different_sweep_errors(self, tmp_path):
        SweepExecutor(make_sweep(TAUS[:2]), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        other = Sweep(
            "taylor-green", {"tau": [0.66], "shape": [(8, 8, 4)]}, steps=10
        )
        with pytest.raises(ScenarioError, match="different"):
            SweepExecutor(other, jobs=1, cache_dir=tmp_path, resume=True).run(
                analyze=False
            )

    def test_resume_requires_cache_dir(self):
        with pytest.raises(ScenarioError, match="cache directory"):
            SweepExecutor(make_sweep(), resume=True)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ScenarioError, match="jobs"):
            SweepExecutor(make_sweep(), jobs=0)


class TestCaseRefPortability:
    def test_registered_spec_object_pools_fine(self):
        """A registered spec object resolves to its registry name, so
        closure-valued fields (steady_state stops) don't hit pickle."""
        spec = get_case("poiseuille-channel")
        assert spec.stop_when is not None  # the hazardous field
        sweep = Sweep(spec, {"tau": [0.9, 1.0]}, steps=10)
        result = SweepExecutor(sweep, jobs=2).run(analyze=False)
        assert result.runs_executed == 2
        assert [r.metrics["steps_run"] for r in result.results] == [10, 10]

    def test_unpicklable_spec_falls_back_to_serial(self):
        """An unregistered spec holding a closure can't cross a process
        boundary; jobs>1 silently degrades to the serial path."""
        spec = dataclasses.replace(
            get_case("taylor-green"),
            name="tg-unregistered",
            stop_when=steady_state(lambda sim: 0.0),
        )
        sweep = Sweep(spec, {"tau": [0.6, 0.8], "shape": [(8, 8, 4)]}, steps=10)
        executor = SweepExecutor(sweep, jobs=2)
        tasks = {
            0: executor_module._VariantTask(spec, (("tau", 0.6),), False, "f0"),
            1: executor_module._VariantTask(spec, (("tau", 0.8),), False, "f1"),
        }
        assert not executor._use_pool(tasks)
        result = executor.run(analyze=False)
        assert result.runs_executed == 2

    def test_unpicklable_override_value_falls_back_to_serial(self):
        """Closure-valued sweep *parameters* must not crash the pool
        path; they degrade to serial just like closure-bearing specs."""
        sweep = Sweep(
            "taylor-green",
            {
                "profile": [lambda x: x, lambda x: 2 * x],
                "shape": [(8, 8, 4)],
            },
            steps=10,
        )
        result = SweepExecutor(sweep, jobs=4).run(analyze=False)
        assert result.runs_executed == 2
        assert [r.metrics["steps_run"] for r in result.results] == [10, 10]


class TestAnalyzeFlagCaching:
    def test_analyze_false_entries_not_served_to_analyze_true(self, tmp_path):
        """Regression: a smoke sweep (analyze=False) must not poison
        the cache with vacuously-passing, metric-less payloads."""
        sweep = Sweep("taylor-green", {"tau": [0.7]}, steps=40)
        smoke = SweepExecutor(sweep, jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert smoke.results[0].checks == {}
        full = SweepExecutor(sweep, jobs=1, cache_dir=tmp_path).run(
            analyze=True
        )
        assert full.runs_executed == 1  # cache miss: analyze differs
        assert "decay_error" in full.results[0].metrics
        assert full.results[0].checks  # real verdicts, not vacuous PASS
        # and the analyze=True entry now serves analyze=True warm runs
        warm = SweepExecutor(sweep, jobs=1, cache_dir=tmp_path).run(
            analyze=True
        )
        assert warm.runs_executed == 0


class TestSweepRunDelegation:
    def test_sweep_run_routes_to_executor(self, tmp_path):
        result = make_sweep(TAUS[:2]).run(
            analyze=False, jobs=2, cache_dir=tmp_path
        )
        assert result.provenance == ["run", "run"]
        assert result.runs_executed == 2
        # Lean results: scalar outcomes only, no simulation attached.
        assert all(r.simulation is None for r in result.results)

    def test_default_run_keeps_simulations(self):
        result = make_sweep(TAUS[:2]).run(analyze=False)
        assert result.provenance is None
        assert all(r.simulation is not None for r in result.results)
