"""ResultCache/SweepManifest units + warm/corrupt/partial cache behavior."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import ResultCache, Sweep, SweepExecutor, SweepManifest
from repro.scenarios import executor as executor_module
from repro.scenarios.cache import sweep_key

PAYLOAD = {
    "case": "x",
    "metrics": {"steps_run": 10, "err": 0.125},
    "series": {"step": [0.0, 5.0], "mass": [1.0, 1.0]},
    "checks": {"ok": True},
}


def make_sweep():
    return Sweep(
        "taylor-green", {"tau": [0.6, 0.8], "shape": [(8, 8, 4)]}, steps=10
    )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc123", PAYLOAD)
        assert cache.get("abc123") == PAYLOAD
        assert cache.keys() == ("abc123",)

    def test_missing_entry_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("nope") is None

    def test_truncated_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get("abc123") is None

    def test_tampered_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        envelope = json.loads(path.read_text())
        envelope["data"]["metrics"]["err"] = 99.0  # checksum now stale
        path.write_text(json.dumps(envelope))
        assert cache.get("abc123") is None

    def test_entry_under_wrong_key_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        path.rename(tmp_path / "def456.json")
        assert cache.get("def456") is None

    def test_manifest_not_listed_as_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepManifest.create(tmp_path, "x", ["tau"], ["abc123"])
        cache.put("abc123", PAYLOAD)
        assert cache.keys() == ("abc123",)

    def test_corrupt_entry_moved_to_sidecar_and_rewarmable(self, tmp_path):
        from repro.scenarios.cache import CORRUPT_DIRNAME

        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        torn = path.read_text()[:40]
        path.write_text(torn)
        assert cache.lookup("abc123").status == "corrupt"
        # the torn bytes were preserved for post-mortem, not destroyed
        assert not path.exists()
        sidecar = tmp_path / CORRUPT_DIRNAME / path.name
        assert sidecar.read_text() == torn
        # ...and the slot re-warms like any cold fingerprint
        assert cache.lookup("abc123").status == "miss"
        cache.put("abc123", PAYLOAD)
        assert cache.get("abc123") == PAYLOAD
        assert cache.keys() == ("abc123",)  # sidecar dir never listed


class TestSweepManifest:
    def test_create_load_round_trip(self, tmp_path):
        created = SweepManifest.create(tmp_path, "x", ["tau"], ["f1", "f2"])
        created.mark_complete("f1")
        loaded = SweepManifest.load(tmp_path)
        assert loaded.case == "x"
        assert loaded.completed == ["f1"]
        assert loaded.missing() == ["f2"]
        assert not loaded.complete
        assert loaded.key == sweep_key("x", ["f1", "f2"])

    def test_load_absent_or_corrupt_is_none(self, tmp_path):
        assert SweepManifest.load(tmp_path) is None
        (tmp_path / SweepManifest.FILENAME).write_text("{not json")
        assert SweepManifest.load(tmp_path) is None

    def test_resume_rejects_mismatched_sweep(self, tmp_path):
        SweepManifest.create(tmp_path, "x", ["tau"], ["f1"])
        with pytest.raises(ScenarioError, match="different"):
            SweepManifest.resume(tmp_path, "y", ["tau"], ["f1"])


class TestWarmCacheSweeps:
    def test_warm_cache_executes_zero_runs_same_table(
        self, tmp_path, monkeypatch
    ):
        cold = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert cold.runs_executed == 2

        def forbidden(task):  # any execution attempt is a failure
            raise AssertionError("warm cache must not run variants")

        monkeypatch.setattr(executor_module, "_execute_variant", forbidden)
        warm = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert warm.runs_executed == 0
        assert warm.provenance == ["cached", "cached"]
        assert warm.to_table() == cold.to_table()
        assert warm.to_csv() == cold.to_csv()

    def test_corrupted_entry_is_rerun(self, tmp_path):
        cold = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        cache = ResultCache(tmp_path)
        victim = cache.keys()[0]
        cache.entry_path(victim).write_text("garbage{{{")
        repaired = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert repaired.runs_executed == 1
        assert sorted(repaired.provenance) == ["cached", "run"]
        assert repaired.to_table() == cold.to_table()
        # the re-run rewrote a valid entry
        assert cache.get(victim) is not None

    def test_partial_entry_is_rerun(self, tmp_path):
        cold = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        cache = ResultCache(tmp_path)
        victim = cache.keys()[1]
        path = cache.entry_path(victim)
        path.write_text(path.read_text()[:40])  # simulated torn write
        repaired = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert repaired.runs_executed == 1
        assert repaired.to_table() == cold.to_table()

    def test_cache_shared_across_jobs_settings(self, tmp_path):
        SweepExecutor(make_sweep(), jobs=2, cache_dir=tmp_path).run(
            analyze=False
        )
        warm = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert warm.runs_executed == 0


class TestConcurrentManifest:
    def make_manifest(self, root):
        return SweepManifest.create(root, "case", ["tau"], ["f1", "f2", "f3"])

    def test_record_completion_merges_concurrent_writers(self, tmp_path):
        """Two in-memory manifests (two workers) over one file: neither
        erases the other's completions."""
        a = self.make_manifest(tmp_path)
        b = SweepManifest.load(tmp_path)
        a.record_completion("f1", worker="wa")
        b.record_completion("f2", worker="wb")
        merged = SweepManifest.load(tmp_path)
        assert sorted(merged.completed) == ["f1", "f2"]
        assert merged.workers == {"f1": "wa", "f2": "wb"}

    def test_record_completion_ignores_foreign_manifest(self, tmp_path):
        mine = self.make_manifest(tmp_path)
        SweepManifest.create(tmp_path, "other-case", ["kn"], ["g1"]).save()
        mine.record_completion("f1")
        assert mine.completed == ["f1"]  # no union with the foreign sweep

    def test_workers_map_roundtrips(self, tmp_path):
        manifest = self.make_manifest(tmp_path)
        manifest.record_completion("f3", worker="w9")
        assert SweepManifest.load(tmp_path).workers == {"f3": "w9"}

    def test_legacy_manifest_without_workers_loads(self, tmp_path):
        manifest = self.make_manifest(tmp_path)
        raw = json.loads(manifest.path.read_text())
        del raw["workers"]
        manifest.path.write_text(json.dumps(raw))
        assert SweepManifest.load(tmp_path).workers == {}


class TestCacheDiff:
    def test_identical_caches(self, tmp_path):
        a = ResultCache(tmp_path / "a")
        b = ResultCache(tmp_path / "b")
        a.put("f1", PAYLOAD)
        b.put("f1", PAYLOAD)
        diff = a.diff(b)
        assert diff.identical
        assert diff.matching == ("f1",)
        assert "1 matching" in diff.summary()

    def test_differing_and_one_sided_entries(self, tmp_path):
        a = ResultCache(tmp_path / "a")
        b = ResultCache(tmp_path / "b")
        a.put("shared", PAYLOAD)
        b.put("shared", {**PAYLOAD, "metrics": {"steps_run": 99}})
        a.put("only-a", PAYLOAD)
        b.put("only-b", PAYLOAD)
        diff = a.diff(b)
        assert not diff.identical
        assert diff.differing == ("shared",)
        assert diff.only_self == ("only-a",)
        assert diff.only_other == ("only-b",)

    def test_invalid_entries_count_as_missing(self, tmp_path):
        a = ResultCache(tmp_path / "a")
        b = ResultCache(tmp_path / "b")
        a.put("f1", PAYLOAD)
        b.put("f1", PAYLOAD)
        (b.root / "f1.json").write_text("{torn")
        diff = a.diff(b)
        assert diff.only_self == ("f1",)
        assert a.checksum("f1") is not None
        assert b.checksum("f1") is None


class TestCacheLookup:
    def make_cache(self, tmp_path):
        from repro.telemetry import Telemetry

        return ResultCache(tmp_path, telemetry=Telemetry.in_memory())

    def test_statuses(self, tmp_path):
        cache = self.make_cache(tmp_path)
        assert cache.lookup("absent").status == "miss"
        cache.put("abc123", PAYLOAD)
        found = cache.lookup("abc123")
        assert found.status == "hit" and found.hit
        assert found.payload == PAYLOAD
        cache.entry_path("abc123").write_text("{torn")
        torn = cache.lookup("abc123")
        assert torn.status == "corrupt"
        assert torn.payload is None and not torn.hit

    def test_corrupt_entry_logged_and_counted(self, tmp_path, caplog):
        cache = self.make_cache(tmp_path)
        cache.put("abc123", PAYLOAD)
        path = cache.entry_path("abc123")
        path.write_text("{torn")
        with caplog.at_level("WARNING", logger="repro.scenarios.cache"):
            assert cache.lookup("abc123").status == "corrupt"
        assert "corrupt cache entry" in caplog.text
        t = cache.telemetry
        assert t.counters["cache.corrupt"] == 1
        corrupt = [
            e
            for e in t.events()
            if e["type"] == "count" and e["name"] == "cache.corrupt"
        ]
        assert corrupt[0]["attrs"]["path"] == str(path)

    def test_get_probes_silently_lookup_counts(self, tmp_path):
        cache = self.make_cache(tmp_path)
        assert cache.get("absent") is None
        assert cache.telemetry.counters == {}
        assert cache.lookup("absent").status == "miss"
        cache.put("abc123", PAYLOAD)
        assert cache.lookup("abc123").hit
        assert cache.telemetry.counters == {"cache.miss": 1, "cache.hit": 1}
