"""ResultCache/SweepManifest units + warm/corrupt/partial cache behavior."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios import ResultCache, Sweep, SweepExecutor, SweepManifest
from repro.scenarios import executor as executor_module
from repro.scenarios.cache import sweep_key

PAYLOAD = {
    "case": "x",
    "metrics": {"steps_run": 10, "err": 0.125},
    "series": {"step": [0.0, 5.0], "mass": [1.0, 1.0]},
    "checks": {"ok": True},
}


def make_sweep():
    return Sweep(
        "taylor-green", {"tau": [0.6, 0.8], "shape": [(8, 8, 4)]}, steps=10
    )


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc123", PAYLOAD)
        assert cache.get("abc123") == PAYLOAD
        assert cache.keys() == ("abc123",)

    def test_missing_entry_is_none(self, tmp_path):
        assert ResultCache(tmp_path).get("nope") is None

    def test_truncated_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get("abc123") is None

    def test_tampered_entry_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        envelope = json.loads(path.read_text())
        envelope["data"]["metrics"]["err"] = 99.0  # checksum now stale
        path.write_text(json.dumps(envelope))
        assert cache.get("abc123") is None

    def test_entry_under_wrong_key_detected(self, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put("abc123", PAYLOAD)
        path.rename(tmp_path / "def456.json")
        assert cache.get("def456") is None

    def test_manifest_not_listed_as_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepManifest.create(tmp_path, "x", ["tau"], ["abc123"])
        cache.put("abc123", PAYLOAD)
        assert cache.keys() == ("abc123",)


class TestSweepManifest:
    def test_create_load_round_trip(self, tmp_path):
        created = SweepManifest.create(tmp_path, "x", ["tau"], ["f1", "f2"])
        created.mark_complete("f1")
        loaded = SweepManifest.load(tmp_path)
        assert loaded.case == "x"
        assert loaded.completed == ["f1"]
        assert loaded.missing() == ["f2"]
        assert not loaded.complete
        assert loaded.key == sweep_key("x", ["f1", "f2"])

    def test_load_absent_or_corrupt_is_none(self, tmp_path):
        assert SweepManifest.load(tmp_path) is None
        (tmp_path / SweepManifest.FILENAME).write_text("{not json")
        assert SweepManifest.load(tmp_path) is None

    def test_resume_rejects_mismatched_sweep(self, tmp_path):
        SweepManifest.create(tmp_path, "x", ["tau"], ["f1"])
        with pytest.raises(ScenarioError, match="different"):
            SweepManifest.resume(tmp_path, "y", ["tau"], ["f1"])


class TestWarmCacheSweeps:
    def test_warm_cache_executes_zero_runs_same_table(
        self, tmp_path, monkeypatch
    ):
        cold = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert cold.runs_executed == 2

        def forbidden(task):  # any execution attempt is a failure
            raise AssertionError("warm cache must not run variants")

        monkeypatch.setattr(executor_module, "_execute_variant", forbidden)
        warm = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert warm.runs_executed == 0
        assert warm.provenance == ["cached", "cached"]
        assert warm.to_table() == cold.to_table()
        assert warm.to_csv() == cold.to_csv()

    def test_corrupted_entry_is_rerun(self, tmp_path):
        cold = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        cache = ResultCache(tmp_path)
        victim = cache.keys()[0]
        cache.entry_path(victim).write_text("garbage{{{")
        repaired = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert repaired.runs_executed == 1
        assert sorted(repaired.provenance) == ["cached", "run"]
        assert repaired.to_table() == cold.to_table()
        # the re-run rewrote a valid entry
        assert cache.get(victim) is not None

    def test_partial_entry_is_rerun(self, tmp_path):
        cold = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        cache = ResultCache(tmp_path)
        victim = cache.keys()[1]
        path = cache.entry_path(victim)
        path.write_text(path.read_text()[:40])  # simulated torn write
        repaired = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert repaired.runs_executed == 1
        assert repaired.to_table() == cold.to_table()

    def test_cache_shared_across_jobs_settings(self, tmp_path):
        SweepExecutor(make_sweep(), jobs=2, cache_dir=tmp_path).run(
            analyze=False
        )
        warm = SweepExecutor(make_sweep(), jobs=1, cache_dir=tmp_path).run(
            analyze=False
        )
        assert warm.runs_executed == 0
