"""Property tests for ``CaseSpec.fingerprint()`` (the sweep-cache key).

The fingerprint must be (a) independent of the order overrides were
applied in, (b) sensitive to *every* spec field, and (c) stable across
interpreter processes — without all three, the content-addressed sweep
cache would either miss identical work or silently serve wrong results.
"""

import dataclasses
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.scenarios import CaseSpec, get_case, steady_state


# Module-level factories: stable qualified names across processes.
def _geometry_a(spec):
    return np.zeros(spec.shape, dtype=bool)


def _geometry_b(spec):
    return np.ones(spec.shape, dtype=bool)


def _observable_a(sim):
    return 0.0


def _observable_b(sim):
    return 1.0


def _collision(spec, lattice):
    return None


def _boundaries(spec, lattice, solid):
    return []


def _initial(spec):
    return None, None


def _analysis(result):
    return {}


def _checks(result):
    return {}


def _report(result):
    return ""


BASE = CaseSpec(
    name="fp-base",
    title="fingerprint base",
    description="base",
    lattice="D3Q19",
    shape=(4, 4, 4),
    tau=0.8,
    order=None,
    collision=None,
    geometry=_geometry_a,
    boundaries=None,
    forcing=(1e-5, 0.0, 0.0),
    initial=None,
    steps=10,
    stop_when=None,
    monitor_every=5,
    check_stability_every=10,
    observables={"probe": _observable_a},
    analysis=None,
    checks=None,
    report=None,
    params={"kn": 0.1},
    tags=("kinetic",),
)

# One changed value per field; the coverage assertion below forces this
# mapping to grow whenever CaseSpec gains a field.
ALTERNATES = {
    "name": "fp-other",
    "title": "another title",
    "description": "another description",
    "lattice": "D3Q27",
    "shape": (4, 4, 8),
    "tau": 0.9,
    "order": 2,
    "kernel": "planned",
    "dtype": "float32",
    "layout": "aos",
    "collision": _collision,
    "geometry": _geometry_b,
    "boundaries": _boundaries,
    "forcing": (2e-5, 0.0, 0.0),
    "initial": _initial,
    "steps": 20,
    "stop_when": steady_state(_observable_a),
    "monitor_every": 10,
    "check_stability_every": 20,
    "observables": {"probe": _observable_b},
    "analysis": _analysis,
    "checks": _checks,
    "report": _report,
    "params": {"kn": 0.2},
    "tags": ("continuum",),
}


class TestSensitivity:
    def test_alternates_cover_every_field(self):
        field_names = {f.name for f in dataclasses.fields(CaseSpec)}
        assert set(ALTERNATES) == field_names

    def test_every_field_changes_the_fingerprint(self):
        base_fp = BASE.fingerprint()
        for field, value in ALTERNATES.items():
            changed = dataclasses.replace(BASE, **{field: value})
            assert changed.fingerprint() != base_fp, (
                f"fingerprint ignores field {field!r}"
            )

    def test_identical_spec_same_fingerprint(self):
        copy = dataclasses.replace(BASE)
        assert copy.fingerprint() == BASE.fingerprint()

    def test_same_qualname_lambdas_do_not_collide(self):
        """Two '<lambda>'s from one scope share module:qualname; their
        bodies must still be distinguished (cache-poisoning hazard)."""
        a = dataclasses.replace(BASE, params={"profile": lambda x: x})
        b = dataclasses.replace(BASE, params={"profile": lambda x: 2 * x})
        assert a.fingerprint() != b.fingerprint()

    def test_identical_lambda_bodies_agree(self):
        a = dataclasses.replace(BASE, params={"profile": lambda x: x + 1})
        b = dataclasses.replace(BASE, params={"profile": lambda x: x + 1})
        assert a.fingerprint() == b.fingerprint()

    def test_default_arguments_distinguish_callables(self):
        def probe_a(sim, scale=1.0):
            return scale

        def probe_b(sim, scale=2.0):
            return scale

        probe_b.__qualname__ = probe_a.__qualname__  # force name collision
        probe_b.__code__ = probe_a.__code__  # and identical bytecode
        a = dataclasses.replace(BASE, observables={"p": probe_a})
        b = dataclasses.replace(BASE, observables={"p": probe_b})
        assert a.fingerprint() != b.fingerprint()

    def test_closure_state_distinguishes_stop_conditions(self):
        # Same qualname, different captured rtol: must not collide.
        tight = dataclasses.replace(
            BASE, stop_when=steady_state(_observable_a, rtol=1e-6)
        )
        loose = dataclasses.replace(
            BASE, stop_when=steady_state(_observable_a, rtol=1e-8)
        )
        assert tight.fingerprint() != loose.fingerprint()


class TestOverrideOrderIndependence:
    def test_kwarg_order(self):
        spec = get_case("microchannel-knudsen")
        a = spec.with_overrides(tau=0.7, kn=0.2, steps=5)
        b = spec.with_overrides(steps=5, kn=0.2, tau=0.7)
        assert a.fingerprint() == b.fingerprint()

    def test_sequential_application_order(self):
        spec = get_case("microchannel-knudsen")
        a = spec.with_overrides(kn=0.2).with_overrides(tau=0.7)
        b = spec.with_overrides(tau=0.7).with_overrides(kn=0.2)
        assert a.fingerprint() == b.fingerprint()

    def test_noop_override_preserves_fingerprint(self):
        spec = get_case("taylor-green")
        assert spec.with_overrides(tau=spec.tau).fingerprint() == spec.fingerprint()

    def test_distinct_overrides_distinct_fingerprints(self):
        spec = get_case("taylor-green")
        assert (
            spec.with_overrides(tau=0.7).fingerprint()
            != spec.with_overrides(tau=0.8).fingerprint()
        )


class _Config:
    """Default-repr object (repr embeds a memory address)."""

    def __init__(self, x):
        self.x = x


class TestObjectParams:
    def test_default_repr_objects_hash_by_state_not_address(self):
        """Regression: the repr fallback must not leak memory addresses
        into cache keys — equal-state objects must agree."""
        a = dataclasses.replace(BASE, params={"cfg": _Config(1)})
        b = dataclasses.replace(BASE, params={"cfg": _Config(1)})
        c = dataclasses.replace(BASE, params={"cfg": _Config(2)})
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()


class TestProcessStability:
    def test_registered_case_fingerprint_survives_a_fresh_interpreter(self):
        expected = get_case("taylor-green").fingerprint()
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.scenarios import get_case; "
                "print(get_case('taylor-green').fingerprint())",
            ],
            env=env,
            capture_output=True,
            text=True,
            check=True,
        )
        assert out.stdout.strip() == expected

    def test_set_literal_constants_stable_across_hash_seeds(self):
        """Regression: a frozenset code constant (set-membership test)
        iterates in PYTHONHASHSEED order; its token must not."""
        src = Path(__file__).resolve().parents[2] / "src"
        code = (
            "import sys, json\n"
            f"sys.path.insert(0, {str(src)!r})\n"
            "from repro.scenarios.spec import _fingerprint_token\n"
            "def probe(sim):\n"
            "    return 1.0 if 'a' in {'a','b','c','d','e','f','g'} else 0.0\n"
            "print(json.dumps(_fingerprint_token(probe)))\n"
        )
        tokens = []
        for seed in ("1", "2"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = seed
            out = subprocess.run(
                [sys.executable, "-c", code],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            tokens.append(out.stdout.strip())
        assert tokens[0] == tokens[1]
