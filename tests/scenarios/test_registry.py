"""Registry round-trip: every case builds a valid, runnable spec."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import (
    CaseRunner,
    CaseSpec,
    available_cases,
    catalog_table,
    get_case,
    register_case,
)
from repro.scenarios.registry import CASES


class TestCatalog:
    def test_at_least_eight_cases(self):
        assert len(available_cases()) >= 8

    def test_ported_examples_and_new_cases_present(self):
        names = set(available_cases())
        assert {
            "artery-flow",
            "microchannel-knudsen",
            "microfluidic-clogging",
            "deep-halo-tuning",
            "scaling-study",
            "taylor-green",
            "lid-driven-cavity",
            "porous-darcy",
        } <= names

    def test_catalog_table_lists_every_case(self):
        table = catalog_table()
        for name in available_cases():
            assert name in table


class TestRoundTrip:
    def test_every_case_validates(self):
        for name in available_cases():
            spec = get_case(name)
            assert spec.name == name
            spec.validate()  # must not raise

    def test_every_case_builds_a_simulation(self):
        for name in available_cases():
            spec = get_case(name)
            sim, solid = CaseRunner(name).build()
            assert sim.time_step == 0
            if spec.params.get("sparse"):
                # Sparse storage is per fluid node, not per box cell.
                assert sim.f.shape[1:] == (sim.domain.num_fluid,)
                assert sim.domain.shape == spec.shape
            else:
                assert sim.f.shape[1:] == spec.shape
            if solid is not None:
                assert solid.shape == spec.shape


class TestRegistration:
    def test_unknown_case_raises_with_hints(self):
        with pytest.raises(ScenarioError, match="available"):
            get_case("no-such-case")

    def test_duplicate_name_rejected(self):
        spec = get_case("taylor-green")
        clone = CaseSpec(name="taylor-green", title="imposter")
        with pytest.raises(ScenarioError, match="already registered"):
            register_case(clone)
        assert CASES["taylor-green"] is spec

    def test_reregistering_same_spec_is_idempotent(self):
        spec = get_case("taylor-green")
        assert register_case(spec) is spec

    def test_invalid_specs_rejected(self):
        with pytest.raises(ScenarioError, match="lattice"):
            register_case(CaseSpec(name="bad", title="t", lattice="D3Q999"))
        with pytest.raises(ScenarioError, match="tau"):
            register_case(CaseSpec(name="bad", title="t", tau=0.4))
        with pytest.raises(ScenarioError, match="steps"):
            register_case(CaseSpec(name="bad", title="t", steps=0))
        with pytest.raises(ScenarioError, match="shape"):
            register_case(CaseSpec(name="bad", title="t", shape=(4, 4)))
        assert "bad" not in CASES


class TestOverrides:
    def test_spec_fields_replace(self):
        spec = get_case("taylor-green").with_overrides(tau=0.9, steps=10)
        assert spec.tau == 0.9
        assert spec.steps == 10
        assert get_case("taylor-green").tau != 0.9  # original untouched

    def test_unknown_keys_land_in_params(self):
        spec = get_case("microchannel-knudsen").with_overrides(kn=0.3)
        assert spec.params["kn"] == 0.3
        assert spec.params["wall_speed"] == 0.005  # untouched knobs kept

    def test_shape_override_coerced_to_tuple(self):
        spec = get_case("taylor-green").with_overrides(shape=[8, 8, 4])
        assert spec.shape == (8, 8, 4)

    def test_forcing_is_overridable(self):
        spec = get_case("poiseuille-channel").with_overrides(
            forcing=(2e-5, 0.0, 0.0)
        )
        assert spec.forcing == (2e-5, 0.0, 0.0)

    def test_non_overridable_spec_fields_rejected(self):
        with pytest.raises(ScenarioError, match="cannot be overridden"):
            get_case("taylor-green").with_overrides(title="imposter")
        with pytest.raises(ScenarioError, match="cannot be overridden"):
            get_case("taylor-green").with_overrides(checks=None)

    def test_bad_override_types_raise_scenario_errors(self):
        spec = get_case("taylor-green")
        with pytest.raises(ScenarioError, match="shape"):
            spec.with_overrides(shape=16)
        with pytest.raises(ScenarioError, match="tau"):
            spec.with_overrides(tau="abc").validate()
        with pytest.raises(ScenarioError, match="steps"):
            spec.with_overrides(steps="abc").validate()
        with pytest.raises(ScenarioError, match="forcing"):
            get_case("poiseuille-channel").with_overrides(forcing=1e-5)
