"""Short-run smoke: every registered case steps stably from its spec."""

import numpy as np
import pytest

from repro.core import total_mass
from repro.scenarios import CaseRunner, available_cases, get_case


@pytest.mark.parametrize("name", available_cases())
def test_case_runs_a_few_steps(name):
    """Each case advances 4 steps on its native grid without blowing up."""
    runner = CaseRunner(name, steps=4, monitor_every=2)
    result = runner.run(analyze=False)
    sim = result.simulation
    assert sim.time_step == 4
    assert np.isfinite(sim.f).all()
    # mass is conserved by every registered boundary/forcing combination
    m0 = result.initial("total_mass") if "total_mass" in result.series else None
    if m0 is not None:
        assert total_mass(sim.f) == pytest.approx(m0, rel=1e-10)


def test_fast_cases_pass_their_own_checks():
    """The cheap validation cases run their full analysis green."""
    for name, overrides in [
        ("taylor-green", dict(steps=100, shape=(16, 16, 4))),
        ("deep-halo-tuning", {}),
    ]:
        result = CaseRunner(name, **overrides).run()
        assert result.checks, f"{name} declares no checks"
        assert result.passed, f"{name} failed: {result.checks}"


def test_catalog_covers_multiple_lattices_and_tags():
    specs = [get_case(name) for name in available_cases()]
    assert {spec.lattice for spec in specs} >= {"D3Q19", "D3Q39"}
    tags = {tag for spec in specs for tag in spec.tags}
    assert {"continuum", "kinetic", "model"} <= tags
