"""`repro sweep-status`: the read-only progress/lease view."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios import LeaseBoard, Sweep, SweepExecutor, sweep_status
from repro.scenarios.cli import main as cli_main


@pytest.fixture
def finished_sweep_dir(tmp_path):
    cache_dir = tmp_path / "cache"
    sweep = Sweep("taylor-green", {"tau": [0.7, 0.8]}, steps=10)
    SweepExecutor(sweep, cache_dir=cache_dir).run()
    return cache_dir


class TestSweepStatus:
    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(ScenarioError, match="no sweep cache"):
            sweep_status(tmp_path / "nowhere")

    def test_directory_without_manifest(self, tmp_path):
        status = sweep_status(tmp_path)
        assert status.case is None
        assert "no sweep manifest" in status.summary()

    def test_completed_sweep(self, finished_sweep_dir):
        status = sweep_status(finished_sweep_dir)
        assert status.case == "taylor-green"
        assert status.parameters == ("tau",)
        assert status.total == 2
        assert status.completed == 2
        assert status.missing == 0
        assert status.complete
        assert not status.published
        text = status.summary()
        assert "2 total, 2 completed, 0 missing" in text
        assert "complete" in text
        assert "active leases: none" in text

    def test_live_and_stale_leases_reported(self, finished_sweep_dir):
        live_board = LeaseBoard(finished_sweep_dir, owner="w-live", ttl=3600)
        assert live_board.acquire("f" * 64)
        stale_board = LeaseBoard(finished_sweep_dir, owner="w-stale", ttl=0.001)
        assert stale_board.acquire("e" * 64)
        import time

        time.sleep(0.01)
        status = sweep_status(finished_sweep_dir)
        assert [r.owner for r in status.live_leases] == ["w-live"]
        assert [r.owner for r in status.stale_leases] == ["w-stale"]
        text = status.summary()
        assert "active leases: 1" in text
        assert "w-live" in text
        assert "stale leases: 1" in text

    def test_status_is_read_only(self, finished_sweep_dir):
        before = sorted(p.name for p in finished_sweep_dir.rglob("*"))
        sweep_status(finished_sweep_dir)
        after = sorted(p.name for p in finished_sweep_dir.rglob("*"))
        assert after == before

    def test_published_sweep_shows_work_order(self, tmp_path):
        from repro.scenarios import SweepScheduler

        cache_dir = tmp_path / "shared"
        sweep = Sweep("taylor-green", {"tau": [0.7, 0.8]}, steps=10)
        SweepScheduler(sweep, cache_dir, workers=0).publish()
        status = sweep_status(cache_dir)
        assert status.published
        assert status.total == 2
        assert status.completed == 0
        assert "published" in status.summary()


class TestStatusCli:
    def test_smoke(self, finished_sweep_dir, capsys):
        code = cli_main(["sweep-status", "--cache-dir", str(finished_sweep_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "taylor-green" in out
        assert "2 completed" in out

    def test_error_path(self, tmp_path, capsys):
        code = cli_main(["sweep-status", "--cache-dir", str(tmp_path / "x")])
        assert code == 2
        assert "error" in capsys.readouterr().err
