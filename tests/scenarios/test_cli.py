"""The ``python -m repro`` scenario subcommands."""

import pytest

from repro.__main__ import main
from repro.errors import ScenarioError
from repro.scenarios import available_cases
from repro.scenarios.cli import _parse_assignments, _parse_grid


class TestCasesCommand:
    def test_lists_catalog(self, capsys):
        assert main(["cases"]) == 0
        out = capsys.readouterr().out
        for name in available_cases():
            assert name in out


class TestCaseCommand:
    def test_runs_case_with_steps_override(self, capsys):
        code = main(["case", "taylor-green", "--steps", "40",
                     "--set", "shape=16,16,4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "taylor-green" in out
        assert "PASS" in out

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        ckpt = str(tmp_path / "tg.npz")
        assert main(["case", "taylor-green", "--steps", "10",
                     "--set", "shape=16,16,4", "--checkpoint", ckpt]) == 0
        assert main(["case", "taylor-green", "--steps", "20",
                     "--set", "shape=16,16,4", "--resume", ckpt]) == 0
        out = capsys.readouterr().out
        assert "reached step 20" in out


class TestSweepCommand:
    def test_two_parameter_sweep_emits_table(self, capsys, tmp_path):
        csv = tmp_path / "sweep.csv"
        code = main([
            "sweep", "taylor-green",
            "--param", "tau=0.6,0.8",
            "--param", "lattice=D3Q19,D3Q27",
            "--steps", "10",
            "--csv", str(csv),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Sweep over taylor-green" in out
        assert "D3Q27" in out
        assert csv.read_text().startswith("tau,lattice")


class TestSweepExecutorFlags:
    def test_jobs_and_cache_dir_then_warm_resume(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = [
            "sweep", "taylor-green",
            "--param", "tau=0.6,0.8",
            "--steps", "10",
            "--jobs", "2",
            "--cache-dir", cache,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 variants: 2 run, 0 cached" in out
        assert "source" in out  # provenance column in the CLI table

        assert main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2 variants: 0 run, 2 cached" in out

    def test_plain_sweep_is_deterministic_no_timing_column(self, capsys):
        """The CLI always executes through SweepExecutor, so wall-clock
        metrics never appear and --jobs N output is byte-identical."""
        argv = ["sweep", "taylor-green", "--param", "tau=0.6,0.8",
                "--steps", "10"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert "mflups" not in serial
        assert "2 variants: 2 run, 0 cached" in serial
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_resume_without_cache_dir_is_an_error(self, capsys):
        code = main([
            "sweep", "taylor-green",
            "--param", "tau=0.6",
            "--steps", "10",
            "--resume",
        ])
        assert code == 2
        assert "cache directory" in capsys.readouterr().err


class TestErrorPaths:
    """Every malformed invocation exits 2 with a message on stderr."""

    def test_unknown_case_name(self, capsys):
        code = main(["case", "no-such-case", "--steps", "10"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown case" in err
        assert "taylor-green" in err  # lists what *is* available

    def test_unknown_sweep_case_name(self, capsys):
        code = main(["sweep", "no-such-case", "--param", "tau=0.6"])
        assert code == 2
        assert "unknown case" in capsys.readouterr().err

    def test_malformed_param_no_equals(self, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau"])
        assert code == 2
        assert "expected key=v1,v2" in capsys.readouterr().err

    def test_malformed_param_empty_values(self, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau="])
        assert code == 2
        assert "expected key=v1,v2" in capsys.readouterr().err

    def test_malformed_set_assignment(self, capsys):
        code = main(["case", "taylor-green", "--set", "tau"])
        assert code == 2
        assert "expected key=value" in capsys.readouterr().err

    def test_workers_without_cache_dir(self, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau=0.6",
                     "--steps", "10", "--workers", "2"])
        assert code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_publish_without_cache_dir(self, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau=0.6",
                     "--steps", "10", "--publish"])
        assert code == 2
        assert "--cache-dir" in capsys.readouterr().err

    def test_workers_and_jobs_conflict(self, tmp_path, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau=0.6",
                     "--steps", "10", "--workers", "2", "--jobs", "2",
                     "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "alternatives" in capsys.readouterr().err

    def test_adaptive_conflicts_with_workers(self, tmp_path, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau=0.6,0.7,0.8",
                     "--steps", "10", "--adaptive", "steps_run",
                     "--workers", "2", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "--adaptive" in capsys.readouterr().err

    def test_worker_against_unpublished_dir(self, tmp_path, capsys):
        code = main(["sweep-worker", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "no published sweep" in capsys.readouterr().err

    def test_adaptive_unknown_observable(self, tmp_path, capsys):
        code = main(["sweep", "taylor-green",
                     "--param", "tau=0.6,0.7,0.8", "--steps", "10",
                     "--adaptive", "bogus"])
        assert code == 2
        assert "unknown observable" in capsys.readouterr().err


class TestDistributedCommands:
    ARGS = ["--param", "tau=0.6,0.8", "--steps", "10"]

    def test_publish_then_worker_then_merge(self, tmp_path, capsys):
        cache = str(tmp_path / "shared")
        assert main(["sweep", "taylor-green", *self.ARGS,
                     "--cache-dir", cache, "--publish"]) == 0
        out = capsys.readouterr().out
        assert "published 2 variant(s)" in out
        assert "sweep-worker" in out  # launch recipe printed

        assert main(["sweep-worker", "--cache-dir", cache,
                     "--worker-id", "t1"]) == 0
        out = capsys.readouterr().out
        assert "worker t1: ran 2 variant(s)" in out

        assert main(["sweep", "taylor-green", *self.ARGS,
                     "--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "2 variants: 0 run, 2 cached" in out

    def test_workers_flag_matches_serial_output(self, tmp_path, capsys):
        serial_csv = tmp_path / "serial.csv"
        dist_csv = tmp_path / "dist.csv"
        assert main(["sweep", "taylor-green", *self.ARGS,
                     "--csv", str(serial_csv)]) == 0
        capsys.readouterr()
        assert main(["sweep", "taylor-green", *self.ARGS,
                     "--workers", "2", "--cache-dir", str(tmp_path / "c"),
                     "--csv", str(dist_csv)]) == 0
        out = capsys.readouterr().out
        assert "2 variants: 2 run, 0 cached" in out
        assert serial_csv.read_bytes() == dist_csv.read_bytes()


class TestAdaptiveCommand:
    def test_adaptive_samples_strict_subset(self, capsys):
        code = main(["sweep", "taylor-green",
                     "--param", "tau=0.55,0.6,0.7,0.8,0.95",
                     "--steps", "10",
                     "--adaptive", "final_kinetic_energy"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sampled 4/5 grid points (3 coarse + 1 refined)" in out
        assert "stage" in out  # per-row stage column in the CLI table


class TestLegacyCommands:
    def test_experiment_list_still_works(self, capsys):
        assert main(["--list"]) == 0
        assert "fig8a" in capsys.readouterr().out


class TestParsing:
    def test_assignment_scalars_and_tuples(self):
        parsed = _parse_assignments(["tau=0.9", "shape=8,8,4", "lattice=D3Q19"])
        assert parsed == {"tau": 0.9, "shape": (8, 8, 4), "lattice": "D3Q19"}

    def test_grid_values(self):
        assert _parse_grid(["kn=0.05,0.1"]) == {"kn": [0.05, 0.1]}

    def test_malformed_assignment_rejected(self):
        with pytest.raises(ScenarioError):
            _parse_assignments(["tau"])
        with pytest.raises(ScenarioError):
            _parse_grid(["kn="])


class TestAutoKernelResolution:
    """`case --kernel auto` resolves to a concrete kernel before the
    (deterministic, fingerprinted) spec, through the per-host verdict
    cache."""

    def _run(self, *extra):
        return main(
            ["case", "taylor-green", "--steps", "20", "--kernel", "auto", *extra]
        )

    def test_auto_resolves_and_reports(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        assert self._run() == 0
        out = capsys.readouterr().out
        assert "kernel auto ->" in out
        assert "(measured)" in out
        assert len(list(tmp_path.glob("*.json"))) == 1

    def test_second_run_hits_the_verdict_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        assert self._run() == 0
        capsys.readouterr()
        assert self._run() == 0
        assert "(cached verdict)" in capsys.readouterr().out

    def test_no_kernel_cache_always_re_times(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_CACHE_DIR", str(tmp_path))
        assert self._run("--no-kernel-cache") == 0
        assert "(measured)" in capsys.readouterr().out
        assert list(tmp_path.glob("*.json")) == []
        assert self._run("--no-kernel-cache") == 0
        assert "(measured)" in capsys.readouterr().out

    def test_sweep_still_rejects_auto(self, capsys):
        code = main(
            ["sweep", "taylor-green", "--param", "tau=0.7,0.8", "--steps", "5",
             "--kernel", "auto"]
        )
        assert code == 2
        assert "timing-dependent" in capsys.readouterr().err


class TestTelemetryFlags:
    def test_telemetry_without_cache_dir(self, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau=0.6",
                     "--steps", "10", "--telemetry"])
        assert code == 2
        assert "--telemetry needs --cache-dir" in capsys.readouterr().err

    def test_telemetry_conflicts_with_adaptive(self, tmp_path, capsys):
        code = main(["sweep", "taylor-green", "--param", "tau=0.6,0.7,0.8",
                     "--steps", "10", "--adaptive", "steps_run",
                     "--cache-dir", str(tmp_path), "--telemetry"])
        assert code == 2
        assert "not supported with --adaptive" in capsys.readouterr().err


class TestEventsCommand:
    def test_no_telemetry_recorded(self, tmp_path, capsys):
        code = main(["events", "--cache-dir", str(tmp_path)])
        assert code == 1
        assert "no telemetry under" in capsys.readouterr().out

    def test_tails_a_recorded_sweep(self, tmp_path, capsys):
        assert main(["sweep", "taylor-green", "--param", "tau=0.6,0.8",
                     "--steps", "10", "--cache-dir", str(tmp_path),
                     "--telemetry"]) == 0
        capsys.readouterr()
        code = main(["events", "--cache-dir", str(tmp_path),
                     "--name", "variant", "--tail", "5"])
        out = capsys.readouterr().out
        assert code == 0
        assert "variant" in out
        assert "event(s) from" in out

    def test_type_filter_validated_by_parser(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(["events", "--cache-dir", str(tmp_path),
                  "--type", "bogus"])
        assert "invalid choice" in capsys.readouterr().err
