"""Layout and sparse-domain axes through the scenario layer.

The acceptance-level layout equivalence: soa and aos runs of two dense
cases are byte-identical per dtype (every layout transform is an exact
permutation); the sparse bifurcating-vessel case runs end-to-end on the
indirect-addressing path with the kernel rung as an override axis.
"""

import numpy as np
import pytest

from repro import api
from repro.__main__ import main
from repro.errors import ScenarioError
from repro.scenarios import get_case, run_case


class TestLayoutSpecField:
    def test_default_is_soa(self):
        assert get_case("taylor-green").layout == "soa"

    def test_layout_override_accepted(self):
        spec = get_case("taylor-green").with_overrides(
            kernel="planned", layout="aos"
        )
        spec.validate()
        assert spec.layout == "aos"

    def test_unknown_layout_rejected(self):
        spec = get_case("taylor-green").with_overrides(layout="csoa")
        with pytest.raises(ScenarioError, match="layout"):
            spec.validate()

    def test_aos_without_planned_kernel_rejected(self):
        spec = get_case("taylor-green").with_overrides(layout="aos")
        with pytest.raises(ScenarioError, match="planned"):
            spec.validate()
        spec = get_case("taylor-green").with_overrides(
            kernel="roll", layout="aos"
        )
        with pytest.raises(ScenarioError, match="planned"):
            spec.validate()

    def test_fingerprint_distinguishes_layouts(self):
        base = get_case("taylor-green").with_overrides(kernel="planned")
        aos = base.with_overrides(layout="aos")
        assert base.fingerprint() != aos.fingerprint()


class TestLayoutEquivalence:
    @pytest.mark.parametrize("case", ["taylor-green", "poiseuille-channel"])
    def test_soa_and_aos_are_byte_identical(self, case):
        runs = {}
        for layout in ("soa", "aos"):
            runs[layout] = run_case(
                case, steps=30, kernel="planned", layout=layout
            )
        soa, aos = runs["soa"], runs["aos"]
        assert soa.series == aos.series
        assert np.array_equal(soa.simulation.f, aos.simulation.f)
        assert soa.checks == aos.checks

    def test_api_case_request_aos_auto_is_forced_planned(self):
        request = api.case_request(
            "taylor-green", kernel="auto", layout="aos"
        )
        assert request.overrides["kernel"] == "planned"
        assert request.auto_kernel.provenance == "layout"

    def test_cli_layout_flag(self, capsys):
        code = main([
            "case", "taylor-green", "--steps", "20",
            "--set", "shape=16,16,4",
            "--kernel", "planned", "--layout", "aos",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "PASS" in out

    def test_cli_layout_sweep_axis(self, capsys):
        code = main([
            "sweep", "taylor-green",
            "--param", "layout=soa,aos",
            "--kernel", "planned",
            "--steps", "10",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "aos" in out and "soa" in out


class TestSparseCase:
    def test_bifurcating_vessel_passes(self):
        result = run_case("bifurcating-vessel", steps=60)
        assert result.passed
        assert result.metrics["fill_fraction"] < 0.5
        # sparse driver, not the dense Simulation
        from repro.core.sparse import SparseSimulation

        assert isinstance(result.simulation, SparseSimulation)

    def test_kernel_is_an_override_axis(self):
        legacy = run_case("bifurcating-vessel", steps=40, kernel="legacy")
        planned = run_case("bifurcating-vessel", steps=40, kernel="planned")
        assert np.allclose(
            legacy.simulation.f, planned.simulation.f, atol=1e-13
        )

    def test_sparse_spec_rejects_unknown_kernel(self):
        spec = get_case("bifurcating-vessel").with_overrides(kernel="roll")
        with pytest.raises(ScenarioError, match="sparse kernel"):
            spec.validate()

    def test_dense_spec_rejects_sparse_kernel(self):
        spec = get_case("taylor-green").with_overrides(
            kernel="sparse-planned"
        )
        with pytest.raises(ScenarioError, match="sparse domain"):
            spec.validate()

    def test_sparse_spec_rejects_aos_layout(self):
        spec = get_case("bifurcating-vessel").with_overrides(layout="aos")
        with pytest.raises(ScenarioError, match="sparse"):
            spec.validate()

    def test_checkpoint_rejected(self, tmp_path):
        from repro.scenarios.runner import CaseRunner

        runner = CaseRunner("bifurcating-vessel", steps=10)
        with pytest.raises(ScenarioError, match="checkpoint"):
            runner.run(checkpoint=str(tmp_path / "x.npz"))

    def test_sparse_case_through_api_cache(self, tmp_path):
        cold = api.run_case(
            "bifurcating-vessel", steps=40, cache_dir=tmp_path
        )
        warm = api.run_case(
            "bifurcating-vessel", steps=40, cache_dir=tmp_path
        )
        assert not cold.cached and warm.cached
        assert cold.payload == warm.payload
